//! Generator-level properties under the seeded `icn_stats::check` harness:
//! the synthetic campaign must be a pure function of its config, and its
//! outputs must stay physically sensible at every scale and seed.

use icn_stats::check::{self, cases};
use icn_synth::{Dataset, SynthConfig};

fn config(rng: &mut icn_stats::Rng) -> SynthConfig {
    let seed = rng.uniform(0.0, 1e6) as u64;
    let scale = rng.uniform(0.01, 0.05);
    check::record(format!("seed {seed}, scale {scale:.4}"));
    SynthConfig::small().with_seed(seed).with_scale(scale)
}

#[test]
fn generation_is_deterministic_in_its_config() {
    cases(6, |_, rng| {
        let cfg = config(rng);
        let a = Dataset::generate(cfg);
        let b = Dataset::generate(cfg);
        assert_eq!(
            a.indoor_totals.as_slice(),
            b.indoor_totals.as_slice(),
            "indoor totals drifted between identical configs"
        );
        assert_eq!(a.outdoor_totals.as_slice(), b.outdoor_totals.as_slice());
        assert_eq!(a.planted_labels(), b.planted_labels());
    });
}

#[test]
fn totals_are_finite_and_non_negative_at_all_scales_and_seeds() {
    cases(6, |_, rng| {
        let ds = Dataset::generate(config(rng));
        for (name, m) in [
            ("indoor", &ds.indoor_totals),
            ("outdoor", &ds.outdoor_totals),
        ] {
            assert!(
                m.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0),
                "{name} totals contain negative or non-finite traffic"
            );
            assert!(m.total() > 0.0, "{name} campaign carries no traffic");
        }
        // Every antenna has a planted archetype within range.
        let n_arch = ds
            .planted_labels()
            .iter()
            .copied()
            .max()
            .expect("no antennas")
            + 1;
        assert_eq!(ds.planted_labels().len(), ds.num_antennas());
        assert!(n_arch <= 9, "more planted archetypes than the paper's 9");
    });
}

#[test]
fn different_seeds_synthesise_different_campaigns() {
    cases(6, |_, rng| {
        let cfg = config(rng);
        let other = cfg.with_seed(cfg.seed.wrapping_add(1));
        let a = Dataset::generate(cfg);
        let b = Dataset::generate(other);
        assert_ne!(
            a.indoor_totals.as_slice(),
            b.indoor_totals.as_slice(),
            "adjacent seeds must not collide"
        );
    });
}
