//! # icn-report — terminal rendering of the paper's figures
//!
//! The reproduction's deliverable is the *data series* behind every figure;
//! these renderers make the shapes inspectable in a terminal or CI log:
//!
//! * [`table`] — aligned text tables (Table 1, k-sweep rows, ...).
//! * [`heatmap`] — shaded Unicode heatmaps, sequential for temporal data
//!   (Figures 10–11) and diverging for RSCA (Figure 4).
//! * [`dendro`] — top-of-hierarchy dendrograms with cut thresholds
//!   (Figure 3).
//! * [`histogram_plot`] — horizontal-bar histograms (Figure 1).
//! * [`sankey`] — proportional cluster→environment flow bands (Figure 6).
//! * [`beeswarm`] — ranked SHAP influence lists with over-/under-use
//!   markers (Figure 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beeswarm;
pub mod dendro;
pub mod heatmap;
pub mod histogram_plot;
pub mod sankey;
pub mod spark;
pub mod table;

pub use table::{num, pct, Table};
