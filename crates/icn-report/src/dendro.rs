//! Text dendrogram rendering (Figure 3).
//!
//! The full 4,762-leaf dendrogram is unreadable in text, so — like the
//! paper's figure, which annotates the cluster structure — we render the
//! *top* of the hierarchy: the tree over the k cluster roots, with each
//! root annotated by its size, plus the distance thresholds for the k = 6
//! and k = 9 cuts.

use icn_cluster::Dendrogram;
use std::fmt::Write as _;

/// Renders the hierarchy over the cluster roots at `k`, one line per node,
/// indented by depth, heights annotated. Cluster roots are labelled with
/// their cut label (size order) and member count.
pub fn render_top(dendro: &Dendrogram, k: usize) -> String {
    let roots = dendro.roots_at_k(k);
    let labels = dendro.cut(k);
    // Map each root to its cut label via its first leaf.
    let root_label = |root: usize| -> usize {
        let leaf = dendro.leaves_under(root)[0];
        labels[leaf]
    };
    let n = dendro.num_leaves();
    let mut out = String::new();
    let (lo, hi) = cut_band_from_dendrogram(dendro, k);
    let _ = writeln!(
        out,
        "dendrogram top (k={k}; cut threshold between heights {:.4} and {:.4})",
        lo, hi
    );

    // Recursive print from the overall root, stopping at cluster roots.
    fn rec(
        d: &Dendrogram,
        node: usize,
        depth: usize,
        roots: &[usize],
        root_label: &dyn Fn(usize) -> usize,
        n: usize,
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        if roots.contains(&node) {
            let size = if node < n {
                1
            } else {
                d.nodes()[node - n].size
            };
            let _ = writeln!(
                out,
                "{indent}cluster {} ({} antennas)",
                root_label(node),
                size
            );
            return;
        }
        let nd = d.nodes()[node - n];
        let _ = writeln!(out, "{indent}+- merge @ {:.4}", nd.height);
        rec(d, nd.left, depth + 1, roots, root_label, n, out);
        rec(d, nd.right, depth + 1, roots, root_label, n, out);
    }
    rec(dendro, dendro.root(), 0, &roots, &root_label, n, &mut out);
    out
}

/// The height band within which cutting yields exactly `k` clusters.
fn cut_band_from_dendrogram(dendro: &Dendrogram, k: usize) -> (f64, f64) {
    let n = dendro.num_leaves();
    let heights: Vec<f64> = dendro.nodes().iter().map(|nd| nd.height).collect();
    let lo = if n > k { heights[n - k - 1] } else { 0.0 };
    let hi = if k >= 2 {
        heights[n - k]
    } else {
        f64::INFINITY
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_cluster::{agglomerate, Linkage};
    use icn_stats::{Matrix, Rng};

    fn dendro() -> Dendrogram {
        let mut rng = Rng::seed_from(77);
        let mut rows = Vec::new();
        for c in 0..3 {
            for _ in 0..8 {
                rows.push(vec![rng.normal(c as f64 * 10.0, 0.5), rng.normal(0.0, 0.5)]);
            }
        }
        let m = Matrix::from_rows(&rows);
        Dendrogram::from_history(&agglomerate(&m, Linkage::Ward))
    }

    #[test]
    fn renders_k_cluster_lines() {
        let d = dendro();
        let s = render_top(&d, 3);
        let cluster_lines = s.lines().filter(|l| l.contains("cluster ")).count();
        assert_eq!(cluster_lines, 3);
        assert!(s.contains("antennas)"));
    }

    #[test]
    fn sizes_sum_to_leaves() {
        let d = dendro();
        let s = render_top(&d, 3);
        let total: usize = s
            .lines()
            .filter_map(|l| {
                let open = l.find('(')?;
                let close = l.find(" antennas")?;
                l[open + 1..close].parse::<usize>().ok()
            })
            .sum();
        assert_eq!(total, d.num_leaves());
    }

    #[test]
    fn header_mentions_thresholds() {
        let d = dendro();
        let s = render_top(&d, 2);
        assert!(s.starts_with("dendrogram top (k=2"));
        assert!(s.contains("cut threshold"));
    }
}
