//! Text beeswarm summaries (Figure 5).
//!
//! The paper's beeswarm plots show per-cluster SHAP distributions; in the
//! terminal we render each cluster's ranked service list with the mean
//! |SHAP| as a bar and an over-/under-utilisation marker derived from the
//! SHAP↔feature-value correlation (the colour axis of the original plots).

use icn_shap::{ClassExplanation, Direction};
use std::fmt::Write as _;

/// Renders the top-`k` influences of one cluster explanation.
///
/// `service_names[f]` labels feature `f`.
pub fn render(ex: &ClassExplanation, service_names: &[&str], k: usize, max_bar: usize) -> String {
    assert!(max_bar > 0, "render: zero bar width");
    let top = ex.top(k);
    let max_val = top
        .first()
        .map(|i| i.mean_abs_shap)
        .unwrap_or(0.0)
        .max(1e-12);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster {} — top {} services by mean |SHAP|:",
        ex.class,
        top.len()
    );
    for inf in top {
        let bar = ((inf.mean_abs_shap / max_val) * max_bar as f64)
            .round()
            .max(1.0) as usize;
        let marker = match inf.direction {
            Direction::OverUtilized => "OVER ",
            Direction::UnderUtilized => "UNDER",
            Direction::Neutral => "  ·  ",
        };
        let name = service_names.get(inf.feature).copied().unwrap_or("?");
        let _ = writeln!(
            out,
            "{name:<26} {marker} {:>8.5} {}",
            inf.mean_abs_shap,
            "*".repeat(bar)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_shap::FeatureInfluence;

    fn fake_explanation() -> ClassExplanation {
        ClassExplanation {
            class: 3,
            influences: vec![
                FeatureInfluence {
                    feature: 1,
                    mean_abs_shap: 0.2,
                    shap_value_correlation: 0.9,
                    mean_shap_on_members: 0.1,
                    direction: Direction::OverUtilized,
                },
                FeatureInfluence {
                    feature: 0,
                    mean_abs_shap: 0.05,
                    shap_value_correlation: -0.8,
                    mean_shap_on_members: 0.02,
                    direction: Direction::UnderUtilized,
                },
            ],
        }
    }

    #[test]
    fn renders_markers_and_order() {
        let ex = fake_explanation();
        let s = render(&ex, &["Spotify", "Teams"], 25, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("cluster 3"));
        assert!(lines[1].starts_with("Teams"));
        assert!(lines[1].contains("OVER"));
        assert!(lines[2].starts_with("Spotify"));
        assert!(lines[2].contains("UNDER"));
    }

    #[test]
    fn truncates_to_k() {
        let ex = fake_explanation();
        let s = render(&ex, &["a", "b"], 1, 10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("top 1 services"));
    }

    #[test]
    fn unknown_feature_name_safe() {
        let ex = fake_explanation();
        let s = render(&ex, &[], 2, 10);
        assert!(s.contains('?'));
    }
}
