//! Sparklines: one-line series rendering.
//!
//! Used by the Figure 2 harness to show the silhouette/Dunn curves as
//! compact in-terminal lines next to the numeric table.

/// Block characters from low to high.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a sparkline, min-max scaled over the series itself.
/// Empty input renders as an empty string; a constant series renders at
/// the lowest bar.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !(span > 0.0) || !v.is_finite() {
                BARS[0]
            } else {
                let idx = ((v - lo) / span * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a labelled sparkline with the numeric range appended, e.g.
/// `silhouette ▇▆▅▄▃▂▁ [0.04 .. 0.29]`.
pub fn labeled_sparkline(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label} (empty)");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!("{label} {} [{lo:.3} .. {hi:.3}]", sparkline(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_series_renders_ramp() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 8);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[7], '█');
        // Non-decreasing.
        for w in chars.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn constant_series_all_low() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s, "▁▁▁");
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn nan_renders_lowest() {
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().nth(1), Some('▁'));
    }

    #[test]
    fn labeled_includes_range() {
        let s = labeled_sparkline("dunn", &[0.1, 0.5]);
        assert!(s.starts_with("dunn "));
        assert!(s.contains("[0.100 .. 0.500]"));
    }
}
