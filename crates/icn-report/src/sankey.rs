//! Text Sankey rendering (Figure 6).
//!
//! A terminal stand-in for the paper's Sankey diagram: one line per
//! cluster→environment flow, with a proportional band of `=` characters,
//! heaviest flows first.

use icn_core::Flow;
use std::fmt::Write as _;

/// Renders flows as proportional bands. `min_count` hides tiny edges
/// (like the figure, which cannot show hairline flows); `max_band` caps
/// the band width.
pub fn render(flows: &[Flow], min_count: usize, max_band: usize) -> String {
    assert!(max_band > 0, "render: zero band width");
    let max_count = flows.iter().map(|f| f.count).max().unwrap_or(1).max(1);
    let mut out = String::new();
    let mut hidden = 0usize;
    for f in flows {
        if f.count < min_count {
            hidden += f.count;
            continue;
        }
        let band = ((f.count as f64 / max_count as f64) * max_band as f64)
            .round()
            .max(1.0) as usize;
        let _ = writeln!(
            out,
            "cluster {} {}> {}  ({})",
            f.cluster,
            "=".repeat(band),
            f.environment.label(),
            f.count
        );
    }
    if hidden > 0 {
        let _ = writeln!(out, "(+ {hidden} antennas in flows below threshold)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_synth::Environment;

    fn flows() -> Vec<Flow> {
        vec![
            Flow {
                cluster: 0,
                environment: Environment::Metro,
                count: 100,
            },
            Flow {
                cluster: 3,
                environment: Environment::Workspace,
                count: 50,
            },
            Flow {
                cluster: 1,
                environment: Environment::Hotel,
                count: 2,
            },
        ]
    }

    #[test]
    fn bands_proportional() {
        let s = render(&flows(), 0, 20);
        let band = |needle: &str| {
            s.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .chars()
                .filter(|&c| c == '=')
                .count()
        };
        assert_eq!(band("Metro"), 20);
        assert_eq!(band("Workspaces"), 10);
        assert!(band("Hotels") >= 1);
    }

    #[test]
    fn threshold_hides_and_reports() {
        let s = render(&flows(), 10, 20);
        assert!(!s.contains("Hotels"));
        assert!(s.contains("below threshold"));
    }

    #[test]
    fn empty_flows_empty_output() {
        assert_eq!(render(&[], 0, 10), "");
    }
}
