//! Text histogram rendering (Figure 1).

use icn_stats::Histogram;
use std::fmt::Write as _;

/// Renders a histogram as horizontal bars, one line per bin, with bin
/// edges, counts and a proportional bar. `max_bar` caps the bar width.
pub fn render(h: &Histogram, title: &str, max_bar: usize) -> String {
    assert!(max_bar > 0, "render: zero bar width");
    let mut out = String::new();
    let _ = writeln!(out, "{title} (n={}):", h.total());
    let max_count = h.counts().iter().copied().max().unwrap_or(0).max(1);
    for i in 0..h.bins() {
        let (lo, hi) = h.edges(i);
        let c = h.counts()[i];
        let bar_len = (c as f64 / max_count as f64 * max_bar as f64).round() as usize;
        let _ = writeln!(out, "[{lo:8.3}, {hi:8.3})  {c:>7}  {}", "#".repeat(bar_len));
    }
    if h.underflow() > 0 || h.overflow() > 0 {
        let _ = writeln!(
            out,
            "(underflow: {}, overflow: {})",
            h.underflow(),
            h.overflow()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bins_and_title() {
        let h = Histogram::of(&[0.1, 0.2, 0.9], 0.0, 1.0, 2);
        let s = render(&h, "demo", 10);
        assert!(s.starts_with("demo (n=3):"));
        assert_eq!(s.lines().count(), 3);
        // The fuller first bin has the longer bar.
        let lines: Vec<&str> = s.lines().collect();
        let bar = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(bar(lines[1]) > bar(lines[2]));
    }

    #[test]
    fn outliers_reported() {
        let h = Histogram::of(&[-5.0, 0.5, 9.0], 0.0, 1.0, 2);
        let s = render(&h, "x", 5);
        assert!(s.contains("underflow: 1"));
        assert!(s.contains("overflow: 1"));
    }

    #[test]
    fn empty_histogram_safe() {
        let h = Histogram::new(0.0, 1.0, 3);
        let s = render(&h, "empty", 5);
        assert!(s.contains("(n=0)"));
    }
}
