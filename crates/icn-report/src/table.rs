//! Plain-text table rendering.
//!
//! Every experiment harness prints its rows through this renderer so the
//! regenerated tables (e.g. Table 1) are aligned and diff-friendly.

/// A simple left-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Row length must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "Table::row: expected {} cells, got {}",
            self.header.len(),
            cells.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, &w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `37.7%`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", 100.0 * frac)
}

/// Formats a float compactly with the given number of decimals.
pub fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "count"]);
        t.row(vec!["a", "1"]).row(vec!["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All data lines align "count" column at the same offset.
        let off = lines[0].find("count").unwrap();
        assert_eq!(lines[2].len().min(off), off.min(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn wrong_arity_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn empty_table_has_header_only() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.377), "37.7%");
        assert_eq!(num(1.23456, 2), "1.23");
    }
}
