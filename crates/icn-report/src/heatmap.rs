//! Unicode heatmap rendering.
//!
//! Renders 2-D value grids (the RSCA heatmap of Figure 4, the temporal
//! heatmaps of Figures 10–11) as shaded Unicode blocks in the terminal.
//! For diverging data (RSCA ∈ [−1, 1]) a signed ramp distinguishes under-
//! (`-`, `=`) from over-utilisation (`+`, `#`).

/// Shade characters for a sequential `[0, 1]` ramp (light → dark).
const SEQ_RAMP: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Characters for a diverging `[-1, 1]` ramp.
const DIV_RAMP: [char; 7] = ['=', '-', '·', ' ', '·', '+', '#'];

/// Maps a value in `[0, 1]` to a sequential shade.
pub fn seq_shade(v: f64) -> char {
    let v = v.clamp(0.0, 1.0);
    let idx = (v * (SEQ_RAMP.len() - 1) as f64).round() as usize;
    SEQ_RAMP[idx]
}

/// Maps a value in `[-1, 1]` to a diverging shade (negative = under-use).
pub fn div_shade(v: f64) -> char {
    let v = v.clamp(-1.0, 1.0);
    let idx = ((v + 1.0) / 2.0 * (DIV_RAMP.len() - 1) as f64).round() as usize;
    DIV_RAMP[idx]
}

/// Renders a sequential heatmap: one text row per data row, with optional
/// row labels. `rows[r][c] ∈ [0, 1]`.
pub fn render_sequential(rows: &[Vec<f64>], row_labels: Option<&[String]>) -> String {
    render(rows, row_labels, seq_shade)
}

/// Renders a diverging heatmap for `[-1, 1]` data (RSCA).
pub fn render_diverging(rows: &[Vec<f64>], row_labels: Option<&[String]>) -> String {
    render(rows, row_labels, div_shade)
}

fn render(rows: &[Vec<f64>], row_labels: Option<&[String]>, shade: impl Fn(f64) -> char) -> String {
    if let Some(labels) = row_labels {
        assert_eq!(labels.len(), rows.len(), "heatmap: label count mismatch");
    }
    let label_w = row_labels
        .map(|ls| ls.iter().map(|l| l.chars().count()).max().unwrap_or(0))
        .unwrap_or(0);
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        if let Some(labels) = row_labels {
            let l = &labels[r];
            out.push_str(l);
            for _ in l.chars().count()..label_w {
                out.push(' ');
            }
            out.push_str(" |");
        }
        for &v in row {
            out.push(shade(v));
        }
        out.push('\n');
    }
    out
}

/// Renders an hour-of-day axis line aligned under a 24-column-per-day
/// heatmap (tick every 6 hours), used by the temporal harnesses.
pub fn hour_axis(days: usize, label_w: usize) -> String {
    let mut line = String::new();
    for _ in 0..label_w {
        line.push(' ');
    }
    if label_w > 0 {
        line.push_str(" |");
    }
    for _ in 0..days {
        line.push_str("0.....6.....12....18....");
    }
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_shade_endpoints() {
        assert_eq!(seq_shade(0.0), ' ');
        assert_eq!(seq_shade(1.0), '█');
        assert_eq!(seq_shade(2.0), '█'); // clamped
        assert_eq!(seq_shade(-1.0), ' ');
    }

    #[test]
    fn div_shade_sign_sensitivity() {
        assert_eq!(div_shade(-1.0), '=');
        assert_eq!(div_shade(1.0), '#');
        assert_eq!(div_shade(0.0), ' ');
        assert_ne!(div_shade(-0.8), div_shade(0.8));
    }

    #[test]
    fn render_shapes() {
        let rows = vec![vec![0.0, 1.0], vec![0.5, 0.5]];
        let s = render_sequential(&rows, None);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
    }

    #[test]
    fn labels_are_aligned() {
        let rows = vec![vec![0.1], vec![0.9]];
        let labels = vec!["a".to_string(), "long".to_string()];
        let s = render_diverging(&rows, Some(&labels));
        let lines: Vec<&str> = s.lines().collect();
        let bar0 = lines[0].find('|').unwrap();
        let bar1 = lines[1].find('|').unwrap();
        assert_eq!(bar0, bar1);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_labels_panic() {
        render_sequential(&[vec![0.0]], Some(&["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn hour_axis_width_matches_days() {
        let a = hour_axis(2, 0);
        assert_eq!(a.trim_end().chars().count(), 48);
    }
}
