//! Property-based tests for the explanation substrate: SHAP axioms
//! (local accuracy / efficiency, missingness, symmetry on symmetric
//! models) checked on randomly grown trees, driven by the deterministic
//! [`icn_stats::check`] harness.

use icn_forest::{DecisionTree, ForestConfig, RandomForest, TrainSet, TreeConfig};
use icn_shap::{base_value, exact_tree_shap, forest_base_value, forest_shap, tree_shap};
use icn_stats::check::{cases, len_in};
use icn_stats::{Matrix, Rng};

fn trainset(rng: &mut Rng, n: usize, d: usize) -> TrainSet {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let mut labels: Vec<usize> = rows
        .iter()
        .map(|r| {
            let s: f64 = r.iter().take(2).sum();
            usize::from(s > 1.0)
        })
        .collect();
    labels[0] = 0;
    labels[n - 1] = 1;
    TrainSet::new(Matrix::from_rows(&rows), labels)
}

#[test]
fn local_accuracy_random_trees() {
    cases(24, |case, rng| {
        let n = len_in(rng, 20, 80);
        let d = len_in(rng, 2, 6);
        let ts = trainset(rng, n, d);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        let base = base_value(&tree);
        let x = ts.x.row(rng.index(n));
        let phi = tree_shap(&tree, x);
        let pred = tree.predict_proba(x);
        for c in 0..tree.n_classes {
            let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
            assert!(
                (total - pred[c]).abs() < 1e-9,
                "case {case} class {c}: {total} vs {}",
                pred[c]
            );
        }
    });
}

#[test]
fn treeshap_equals_exact_small() {
    cases(24, |case, rng| {
        let n = len_in(rng, 20, 60);
        let ts = trainset(rng, n, 4);
        let all: Vec<usize> = (0..ts.len()).collect();
        let cfg = TreeConfig {
            max_depth: 5,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&ts, &all, &cfg, rng);
        let x = ts.x.row(0);
        let fast = tree_shap(&tree, x);
        let (slow, _) = exact_tree_shap(&tree, x);
        for f in 0..4 {
            for c in 0..tree.n_classes {
                assert!(
                    (fast[f][c] - slow[f][c]).abs() < 1e-9,
                    "case {case} feature {f} class {c}"
                );
            }
        }
    });
}

#[test]
fn missingness_unused_features_get_zero() {
    // Grow a tree on 5 features where labels depend on feature 0 only,
    // then check that features the tree never splits on get phi == 0.
    cases(24, |case, rng| {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..5).map(|_| rng.uniform(0.0, 1.0)).collect())
            .collect();
        let mut labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        labels[0] = 0;
        labels[1] = 1;
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        let used: std::collections::HashSet<usize> = tree
            .nodes
            .iter()
            .filter(|nd| !nd.is_leaf())
            .map(|nd| nd.feature)
            .collect();
        let phi = tree_shap(&tree, ts.x.row(3));
        for f in 0..5 {
            if !used.contains(&f) {
                for c in 0..tree.n_classes {
                    assert!(
                        phi[f][c].abs() < 1e-12,
                        "case {case}: unused feature {f} has phi {}",
                        phi[f][c]
                    );
                }
            }
        }
    });
}

#[test]
fn forest_local_accuracy() {
    cases(24, |case, rng| {
        let n = len_in(rng, 30, 60);
        let ts = trainset(rng, n, 4);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 6,
                seed: rng.next_u64(),
                ..ForestConfig::default()
            },
        );
        let base = forest_base_value(&forest);
        let x = ts.x.row(n / 2);
        let phi = forest_shap(&forest, x);
        let pred = forest.predict_proba(x);
        for c in 0..forest.n_classes {
            let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
            assert!((total - pred[c]).abs() < 1e-9, "case {case} class {c}");
        }
    });
}

#[test]
fn per_class_phis_sum_to_zero_across_classes() {
    // Probabilities sum to 1 for every input, so Shapley values per
    // feature must sum to 0 across classes.
    cases(24, |case, rng| {
        let n = len_in(rng, 30, 60);
        let ts = trainset(rng, n, 3);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), rng);
        let phi = tree_shap(&tree, ts.x.row(1));
        for f in 0..3 {
            let s: f64 = phi[f].iter().sum();
            assert!(s.abs() < 1e-9, "case {case}: feature {f} class-sum {s}");
        }
    });
}
