//! Property-based tests for the explanation substrate: SHAP axioms
//! (local accuracy / efficiency, missingness, symmetry on symmetric
//! models) checked on randomly grown trees.

use icn_forest::{DecisionTree, ForestConfig, RandomForest, TrainSet, TreeConfig};
use icn_shap::{base_value, exact_tree_shap, forest_base_value, forest_shap, tree_shap};
use icn_stats::{Matrix, Rng};
use proptest::prelude::*;

fn trainset(seed: u64, n: usize, d: usize) -> TrainSet {
    let mut rng = Rng::seed_from(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let mut labels: Vec<usize> = rows
        .iter()
        .map(|r| {
            let s: f64 = r.iter().take(2).sum();
            usize::from(s > 1.0)
        })
        .collect();
    labels[0] = 0;
    labels[n - 1] = 1;
    TrainSet::new(Matrix::from_rows(&rows), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn local_accuracy_random_trees(seed in any::<u64>(), n in 20usize..80, d in 2usize..6) {
        let ts = trainset(seed, n, d);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        let base = base_value(&tree);
        let x = ts.x.row(seed as usize % n);
        let phi = tree_shap(&tree, x);
        let pred = tree.predict_proba(x);
        for c in 0..tree.n_classes {
            let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
            prop_assert!((total - pred[c]).abs() < 1e-9, "class {}: {} vs {}", c, total, pred[c]);
        }
    }

    #[test]
    fn treeshap_equals_exact_small(seed in any::<u64>(), n in 20usize..60) {
        let ts = trainset(seed, n, 4);
        let all: Vec<usize> = (0..ts.len()).collect();
        let cfg = TreeConfig { max_depth: 5, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&ts, &all, &cfg, &mut Rng::seed_from(seed));
        let x = ts.x.row(0);
        let fast = tree_shap(&tree, x);
        let (slow, _) = exact_tree_shap(&tree, x);
        for f in 0..4 {
            for c in 0..tree.n_classes {
                prop_assert!((fast[f][c] - slow[f][c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn missingness_unused_features_get_zero(seed in any::<u64>()) {
        // Grow a tree on 5 features where labels depend on feature 0 only,
        // then check that features the tree never splits on get phi == 0.
        let mut rng = Rng::seed_from(seed);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..5).map(|_| rng.uniform(0.0, 1.0)).collect())
            .collect();
        let mut labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
        labels[0] = 0;
        labels[1] = 1;
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        let used: std::collections::HashSet<usize> = tree
            .nodes
            .iter()
            .filter(|nd| !nd.is_leaf())
            .map(|nd| nd.feature)
            .collect();
        let phi = tree_shap(&tree, ts.x.row(3));
        for f in 0..5 {
            if !used.contains(&f) {
                for c in 0..tree.n_classes {
                    prop_assert!(phi[f][c].abs() < 1e-12, "unused feature {} has phi {}", f, phi[f][c]);
                }
            }
        }
    }

    #[test]
    fn forest_local_accuracy(seed in any::<u64>(), n in 30usize..60) {
        let ts = trainset(seed, n, 4);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig { n_trees: 6, seed, ..ForestConfig::default() },
        );
        let base = forest_base_value(&forest);
        let x = ts.x.row(n / 2);
        let phi = forest_shap(&forest, x);
        let pred = forest.predict_proba(x);
        for c in 0..forest.n_classes {
            let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
            prop_assert!((total - pred[c]).abs() < 1e-9);
        }
    }

    #[test]
    fn per_class_phis_sum_to_zero_across_classes(seed in any::<u64>(), n in 30usize..60) {
        // Probabilities sum to 1 for every input, so Shapley values per
        // feature must sum to 0 across classes.
        let ts = trainset(seed, n, 3);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed));
        let phi = tree_shap(&tree, ts.x.row(1));
        for f in 0..3 {
            let s: f64 = phi[f].iter().sum();
            prop_assert!(s.abs() < 1e-9, "feature {} class-sum {}", f, s);
        }
    }
}
