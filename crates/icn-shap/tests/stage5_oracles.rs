//! Stage 5 (TreeSHAP explanations): differential oracle + metamorphic
//! invariants against `icn-testkit`.
//!
//! Oracle: the batched SHAP pass is compared to per-sample recomputation,
//! and single-tree TreeSHAP to the 2^M exact Shapley definition.
//! Metamorphic: relabeling the services (permuting feature columns and
//! rewiring the fitted trees accordingly) must permute the attributions,
//! and local accuracy must survive both.

use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_shap::{exact_tree_shap, forest_base_value, forest_shap, forest_shap_batch, tree_shap};
use icn_stats::check::{self, cases};
use icn_stats::Matrix;
use icn_testkit::{
    naive_forest_shap, naive_tree_shap, per_sample_shap_batch, permutation, permute_cols,
    permute_forest_features, permute_slice,
};

/// Small labelled blobs (feature count kept ≤ 6 so the 2^M oracle stays
/// cheap).
fn blobs(rng: &mut icn_stats::Rng) -> TrainSet {
    let k = check::len_in(rng, 2, 4);
    let m = check::len_in(rng, 3, 7);
    let per = check::len_in(rng, 6, 12);
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for c in 0..k {
        for _ in 0..per {
            rows.push(
                (0..m)
                    .map(|j| rng.normal(if j % k == c { 3.0 } else { 0.0 }, 0.7))
                    .collect::<Vec<f64>>(),
            );
            y.push(c);
        }
    }
    check::record(format!("{k} classes x {per} samples, {m} features"));
    TrainSet::new(Matrix::from_rows(&rows), y)
}

fn small_forest(ts: &TrainSet, seed: u64) -> RandomForest {
    RandomForest::fit(
        ts,
        &ForestConfig {
            n_trees: 8,
            seed,
            ..ForestConfig::default()
        },
    )
}

#[test]
fn batched_shap_matches_per_sample_recomputation() {
    cases(10, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        let batched = forest_shap_batch(&forest, &ts.x);
        let oracle = per_sample_shap_batch(&forest, &ts.x);
        assert_eq!(batched.len(), oracle.len());
        for (c, (b, o)) in batched.iter().zip(&oracle).enumerate() {
            assert_eq!(b.shape(), o.shape());
            for (i, (x, y)) in b.as_slice().iter().zip(o.as_slice()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-12,
                    "class {c} cell {i}: batched {x} vs per-sample {y}"
                );
            }
        }
    });
}

#[test]
fn quadrature_kernel_matches_recursive_oracle() {
    // The Gauss–Legendre quadrature kernel evaluates the same Shapley
    // weights as the historical recursive recurrence (preserved verbatim
    // in icn-testkit) through an exact integral reformulation — only f64
    // rounding may differ, so the diff must sit at accumulation-noise
    // level, far below any value the pipeline renders.
    cases(10, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        for i in 0..ts.x.rows() {
            let x = ts.x.row(i);
            let kernel = forest_shap(&forest, x);
            let oracle = naive_forest_shap(&forest, x);
            for (f, (kf, of)) in kernel.iter().zip(&oracle).enumerate() {
                for (c, (a, b)) in kf.iter().zip(of).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-11,
                        "row {i} feature {f} class {c}: kernel {a} vs recursive {b}"
                    );
                }
            }
        }
        // Single-tree path too (covers the repeated-feature merge).
        for tree in &forest.trees {
            let x = ts.x.row(0);
            let kernel = tree_shap(tree, x);
            let oracle = naive_tree_shap(tree, x);
            for (kf, of) in kernel.iter().zip(&oracle) {
                for (a, b) in kf.iter().zip(of) {
                    assert!((a - b).abs() < 1e-11, "kernel {a} vs recursive {b}");
                }
            }
        }
    });
}

#[test]
fn batched_shap_invariant_to_thread_count() {
    // ICN_THREADS only changes the schedule, never any floating-point
    // expression: the batched SHAP matrices must be bit-identical with 1
    // worker, 3 workers, and the hardware default.
    let mut rng = icn_stats::Rng::seed_from(42);
    let ts = blobs(&mut rng);
    let forest = small_forest(&ts, 7);
    let run_with = |threads: Option<&str>| {
        match threads {
            Some(t) => std::env::set_var("ICN_THREADS", t),
            None => std::env::remove_var("ICN_THREADS"),
        }
        let out = forest_shap_batch(&forest, &ts.x);
        std::env::remove_var("ICN_THREADS");
        out
    };
    let serial = run_with(Some("1"));
    let three = run_with(Some("3"));
    let default = run_with(None);
    for (c, s) in serial.iter().enumerate() {
        for (i, (&a, &b)) in s.as_slice().iter().zip(three[c].as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "class {c} cell {i}: 1 vs 3 threads"
            );
        }
        for (i, (&a, &b)) in s.as_slice().iter().zip(default[c].as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "class {c} cell {i}: 1 vs default threads"
            );
        }
    }
}

#[test]
fn treeshap_matches_exact_shapley_enumeration() {
    cases(6, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        for tree in &forest.trees {
            for i in (0..ts.x.rows()).step_by(5) {
                let x = ts.x.row(i);
                let fast = tree_shap(tree, x);
                let (slow, _base) = exact_tree_shap(tree, x);
                for (j, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    for (c, (a, b)) in f.iter().zip(s).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-9,
                            "row {i} feature {j} class {c}: {a} vs exact {b}"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn attributions_equivariant_to_service_relabeling() {
    // Renaming the services — permuting the feature columns and rewiring
    // the fitted forest to match — must permute each sample's attribution
    // vector the same way, for every class.
    cases(10, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        let p = permutation(rng, ts.x.cols());
        check::record(format!("service perm {p:?}"));
        let rewired = permute_forest_features(&forest, &p);
        let x_perm = permute_cols(&ts.x, &p);
        for i in 0..ts.x.rows() {
            let phi = forest_shap(&forest, ts.x.row(i));
            let phi_perm = forest_shap(&rewired, x_perm.row(i));
            let expected = permute_slice(&phi, &p);
            for (j, (a, b)) in phi_perm.iter().zip(&expected).enumerate() {
                for (c, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-12,
                        "row {i} permuted feature {j} class {c}: {x} vs {y}"
                    );
                }
            }
        }
    });
}

#[test]
fn local_accuracy_holds_on_random_forests() {
    // Shapley completeness: attributions plus the base value reconstruct
    // the model output exactly, class by class.
    cases(10, |case, rng| {
        let ts = blobs(rng);
        let forest = small_forest(&ts, case + 1);
        let base = forest_base_value(&forest);
        for i in 0..ts.x.rows() {
            let phi = forest_shap(&forest, ts.x.row(i));
            let pred = forest.predict_proba(ts.x.row(i));
            for c in 0..forest.n_classes {
                let total: f64 = phi.iter().map(|f| f[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "row {i} class {c}: completeness {total} vs prediction {}",
                    pred[c]
                );
            }
        }
    });
}
