//! KernelSHAP — model-agnostic Shapley estimation.
//!
//! The paper's Section 5.1.1 contrasts model-agnostic Kernel SHAP ("can be
//! used to interpret any ML model") with the faster tree-specific method.
//! We implement it as the B5 ablation's second opinion: sample binary
//! coalitions `z ∈ {0,1}^M`, evaluate the model with absent features
//! imputed from background data, weight each coalition by the Shapley
//! kernel `(M−1) / (C(M,|z|) · |z| · (M−|z|))`, and fit a weighted linear
//! model whose coefficients estimate the Shapley values. The efficiency
//! constraint (`Σφ = f(x) − E[f]`) is enforced by eliminating one
//! coefficient.

use icn_stats::{Matrix, Rng};

use crate::linalg::weighted_least_squares;

/// A black-box scalar model: maps a feature vector to one output (e.g. the
/// probability of one class).
pub trait ScalarModel {
    /// Evaluates the model on one sample.
    fn eval(&self, x: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64> ScalarModel for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Configuration for a KernelSHAP run.
#[derive(Clone, Copy, Debug)]
pub struct KernelShapConfig {
    /// Number of sampled coalitions (besides the all-present/all-absent
    /// anchors). More samples → lower variance.
    pub n_samples: usize,
    /// Number of background rows used to impute absent features.
    pub max_background: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KernelShapConfig {
    fn default() -> Self {
        KernelShapConfig {
            n_samples: 2048,
            max_background: 32,
            seed: 0x5A11,
        }
    }
}

/// Estimates Shapley values of `model` at `x`, imputing absent features
/// from rows of `background`. Returns `(phi, base)` where `base = E[f]`
/// over the background and `Σφ + base ≈ f(x)`.
pub fn kernel_shap(
    model: &dyn ScalarModel,
    x: &[f64],
    background: &Matrix,
    cfg: &KernelShapConfig,
) -> (Vec<f64>, f64) {
    let m = x.len();
    assert!(m >= 2, "kernel_shap: need at least 2 features");
    assert_eq!(
        background.cols(),
        m,
        "kernel_shap: background shape mismatch"
    );
    assert!(background.rows() > 0, "kernel_shap: empty background");
    let mut rng = Rng::seed_from(cfg.seed);

    // Background subset.
    let bg_rows: Vec<usize> = if background.rows() <= cfg.max_background {
        (0..background.rows()).collect()
    } else {
        rng.sample_indices(background.rows(), cfg.max_background)
    };

    // f with a coalition mask: absent features replaced by each background
    // row in turn, outputs averaged.
    let eval_mask = |mask: &[bool], rng_buf: &mut Vec<f64>| -> f64 {
        let mut acc = 0.0;
        for &b in &bg_rows {
            rng_buf.clear();
            rng_buf.extend(mask.iter().enumerate().map(|(j, &keep)| {
                if keep {
                    x[j]
                } else {
                    background.get(b, j)
                }
            }));
            acc += model.eval(rng_buf);
        }
        acc / bg_rows.len() as f64
    };

    let mut buf = Vec::with_capacity(m);
    let fx = eval_mask(&vec![true; m], &mut buf);
    let base = eval_mask(&vec![false; m], &mut buf);

    // Sample coalitions with sizes weighted by the Shapley kernel's
    // marginal over |z| (∝ (M−1)/(s(M−s))), then uniform subsets of that
    // size. The per-row regression weight is then constant, which is
    // equivalent and better conditioned.
    let mut size_weights: Vec<f64> = (1..m)
        .map(|s| (m as f64 - 1.0) / ((s * (m - s)) as f64))
        .collect();
    let sw_total: f64 = size_weights.iter().sum();
    for w in &mut size_weights {
        *w /= sw_total;
    }

    let mut designs: Vec<Vec<f64>> = Vec::with_capacity(cfg.n_samples);
    let mut targets: Vec<f64> = Vec::with_capacity(cfg.n_samples);
    let mut weights: Vec<f64> = Vec::with_capacity(cfg.n_samples);
    let mut mask = vec![false; m];
    for _ in 0..cfg.n_samples {
        let s = 1 + rng.categorical(&size_weights);
        mask.iter_mut().for_each(|v| *v = false);
        for idx in rng.sample_indices(m, s) {
            mask[idx] = true;
        }
        let y = eval_mask(&mask, &mut buf);
        // Efficiency constraint eliminates phi_{m-1}:
        // y - base - z_{m-1} (fx - base) = Σ_{j<m-1} (z_j - z_{m-1}) φ_j.
        let z_last = f64::from(mask[m - 1]);
        let row: Vec<f64> = (0..m - 1).map(|j| f64::from(mask[j]) - z_last).collect();
        designs.push(row);
        targets.push(y - base - z_last * (fx - base));
        weights.push(1.0);
    }

    let beta =
        weighted_least_squares(&designs, &targets, &weights).unwrap_or_else(|| vec![0.0; m - 1]);
    let mut phi = beta;
    let sum_rest: f64 = phi.iter().sum();
    phi.push(fx - base - sum_rest);
    (phi, base)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear model: Shapley values have the closed form
    /// `phi_j = w_j (x_j − mean(background_j))`.
    #[test]
    fn linear_model_closed_form() {
        let w = [2.0, -1.0, 0.5];
        let model = move |x: &[f64]| w.iter().zip(x).map(|(a, b)| a * b).sum::<f64>();
        let background = Matrix::from_rows(&[vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]]);
        let x = [2.0, 3.0, -1.0];
        let cfg = KernelShapConfig {
            n_samples: 4000,
            ..KernelShapConfig::default()
        };
        let (phi, base) = kernel_shap(&model, &x, &background, &cfg);
        let bg_mean = [0.5, 0.5, 0.5];
        for j in 0..3 {
            let expect = w[j] * (x[j] - bg_mean[j]);
            assert!(
                (phi[j] - expect).abs() < 0.05,
                "phi[{j}] = {} expect {expect}",
                phi[j]
            );
        }
        let fx = model(&x);
        assert!((phi.iter().sum::<f64>() + base - fx).abs() < 1e-9);
    }

    #[test]
    fn efficiency_holds_exactly_by_construction() {
        let model = |x: &[f64]| x[0] * x[1] + x.get(2).copied().unwrap_or(0.0);
        let background = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let x = [1.0, 2.0, 3.0];
        let (phi, base) = kernel_shap(&model, &x, &background, &KernelShapConfig::default());
        let fx = model(&x);
        assert!((phi.iter().sum::<f64>() + base - fx).abs() < 1e-9);
    }

    #[test]
    fn symmetric_features_get_equal_credit() {
        // f = x0 + x1, identical coordinates ⇒ equal Shapley values.
        let model = |x: &[f64]| x[0] + x[1];
        let background = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let (phi, _) = kernel_shap(
            &model,
            &[1.0, 1.0],
            &background,
            &KernelShapConfig {
                n_samples: 1000,
                ..Default::default()
            },
        );
        assert!((phi[0] - phi[1]).abs() < 0.05, "phi {phi:?}");
        assert!((phi[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn dummy_feature_gets_zero() {
        let model = |x: &[f64]| 5.0 * x[0];
        let background = Matrix::from_rows(&[vec![0.0, 7.0], vec![0.0, -3.0]]);
        let (phi, _) = kernel_shap(
            &model,
            &[1.0, 100.0],
            &background,
            &KernelShapConfig {
                n_samples: 1000,
                ..Default::default()
            },
        );
        assert!(phi[1].abs() < 0.05, "phi {phi:?}");
        assert!((phi[0] - 5.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = |x: &[f64]| x[0] * x[1];
        let background = Matrix::from_rows(&[vec![0.5, 0.5]]);
        let cfg = KernelShapConfig {
            n_samples: 300,
            ..Default::default()
        };
        let (a, _) = kernel_shap(&model, &[1.0, 2.0], &background, &cfg);
        let (b, _) = kernel_shap(&model, &[1.0, 2.0], &background, &cfg);
        assert_eq!(a, b);
    }
}
