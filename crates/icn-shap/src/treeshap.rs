//! TreeSHAP — polynomial-time exact Shapley values for decision trees.
//!
//! The paper uses the TreeShap model-specific approximation "employed for
//! tree-based ML algorithms such as random forests" because it is
//! "dramatically faster" than model-agnostic estimation (Section 5.1.1).
//! This module computes the same path-dependent attributions as the
//! algorithm of Lundberg et al., but through its **integral form**: for a
//! leaf with unique path features `P` (repeated splits merged), feature
//! `i`'s Shapley weight is
//!
//! ```text
//! phi_i(leaf) = (one_i − zero_i) · v_leaf · ∫₀¹ ∏_{j ∈ P∖{i}} u_j(t) dt,
//!               u_j(t) = one_j·t + zero_j·(1 − t)
//! ```
//!
//! Expanding the product and integrating term-by-term (the Beta integral
//! `∫ t^k (1−t)^{l−1−k} dt = k!(l−1−k)!/l!`) reproduces exactly the
//! `|S|!(l−1−|S|)!/l!` subset weights of the classic recurrence. The
//! integrand is a polynomial of degree `< l`, so an `m = ⌈l_max/2⌉`-point
//! Gauss–Legendre rule ([`crate::quad`]) integrates it **exactly** — this
//! is a reformulation, not an approximation (only ordinary ~1e-15 f64
//! rounding differs from the recursive formulation).
//!
//! ## Kernel
//!
//! The descent keeps `V_q = ∏_j u_j(t_q)` at the `m` quadrature points,
//! updated with one fused multiply per point per node — no
//! cardinality-weight recurrences, no divisions on the hot path. At a
//! leaf, with `W_q = ω_q·V_q`:
//!
//! * **absent-branch features** (`one = 0`): `u_i(t) = zero_i·(1−t)`, so
//!   `zero_i` cancels and every such feature shares one sum
//!   `−Σ_q W_q/(1−t_q)` — O(1) per feature, `1/(1−t_q)` precomputed.
//! * **present-branch features** (`one = 1`): `Σ_q W_q / u_i(t_q)` with
//!   the inverse row `1/(t_q + ratio·(1−t_q))` precomputed **once per
//!   tree** for every node and amortized across all samples of a batch
//!   chunk; repeated-feature merges compute their own inverse row into a
//!   per-depth scratch arena.
//!
//! The walk itself is iterative (explicit frame stack) and allocation-free:
//! a [`Scratch`] arena holds per-depth path/product buffers plus the
//! per-tree tables, allocated once per worker and reused for every
//! (tree, sample) walk. Complexity is O(nodes·m) per tree and sample with
//! `m = ⌈l_max/2⌉`, versus the O(L·D²) of the recurrence and the 2^M
//! enumeration of [`crate::exact`], against which the unit tests verify
//! agreement (and `icn_testkit::naive_forest_shap` keeps the recursive
//! formulation as a differential oracle).

use crate::quad::gauss_legendre_01;
use icn_forest::{DecisionTree, RandomForest, SoaForest, SoaTree};
use icn_stats::{par, Matrix};

/// Marker for "no node / no slot" in `u32` fields.
const NONE: u32 = u32::MAX;

/// One unique feature on the current root→node path, packed to 16 bytes —
/// the per-depth buffers are copied parent→child at every node visit, so
/// element size is memcpy bandwidth on the hot path.
#[derive(Clone, Copy, Debug)]
struct PathElem {
    /// Feature index.
    feature: u32,
    /// Depth whose row of the per-depth `riu` arena holds this element's
    /// inverse row `1/u(t_q)` (the depth the element was appended or last
    /// merged at). Only meaningful while the element is present-branch.
    src: u32,
    /// Product of cover ratios over the feature's occurrences, with the
    /// one-fraction folded into the sign: positive while every occurrence
    /// followed the sample's branch (`one = 1`), negated once any
    /// occurrence went the other way (`one = 0`). Cover ratios are
    /// strictly positive, so the sign is never ambiguous.
    zero: f64,
}

const EMPTY_ELEM: PathElem = PathElem {
    feature: NONE,
    src: NONE,
    zero: 0.0,
};

/// One pending node visit of the iterative descent. The frame carries the
/// full delta to apply at its own depth: which feature the parent split
/// on, whether that feature already sat on the path (`merged_slot`), and
/// the branch fractions of this child.
#[derive(Clone, Copy, Debug)]
struct Frame {
    node: u32,
    depth: u32,
    parent_len: u32,
    feature: u32,
    /// Path slot of an earlier occurrence of `feature`, or [`NONE`].
    merged_slot: u32,
    /// 1.0 on the branch the sample follows, 0.0 on the other.
    one: f64,
    /// Cover ratio of descending into `node`.
    ratio: f64,
}

/// Reusable per-worker scratch for the TreeSHAP kernel — the walk itself
/// performs no heap allocation. Holds the per-depth path and
/// quadrature-product arenas (a node's buffers are derived from its
/// parent's, one level up, which stays intact while the whole subtree is
/// processed) plus the per-tree quadrature tables installed by `prepare`.
#[derive(Clone, Debug)]
pub struct Scratch {
    /// Arena depth capacity (levels = max tree depth + 1).
    levels: usize,
    /// Slots per level of the `elems` arena.
    elem_stride: usize,
    /// Quadrature order of the prepared tree.
    m: usize,
    /// Per-depth unique-feature path buffers.
    elems: Vec<PathElem>,
    /// Per-depth weighted products `ω_q · ∏_j u_j(t_q)`, `m` per level —
    /// the quadrature weights are folded in at the root, so leaves sum
    /// lanes directly.
    v: Vec<f64>,
    /// Per-depth inverse rows of the path's present-branch elements, `m`
    /// per level — copied from `iu` on descent (or computed, after a
    /// merge), so every leaf dot reads this one small resident arena.
    riu: Vec<f64>,
    /// Leaf staging: the product row of a leaf child, derived in place
    /// from its parent's row (leaves never get a frame or an arena level).
    vleaf: Vec<f64>,
    /// Leaf staging: inverse row of a merge happening at a leaf child.
    rleaf: Vec<f64>,
    /// Leaf staging: the shared absent-element credits `−s_cold · v` per
    /// nonzero leaf class — every absent path element adds exactly these
    /// values, so they are computed once per leaf, not once per element.
    svc: Vec<f64>,
    /// Pending node visits.
    stack: Vec<Frame>,
    /// Gauss–Legendre nodes on [0, 1].
    qt: Vec<f64>,
    /// Gauss–Legendre weights (sum 1).
    qw: Vec<f64>,
    /// `1 − t_q`.
    omt: Vec<f64>,
    /// `1 / (1 − t_q)` — the shared absent-feature leaf sum folds this.
    ic: Vec<f64>,
    /// Per-node inverse rows `1/(t_q + ratio·(1−t_q))`, `m` per node of
    /// the prepared tree.
    iu: Vec<f64>,
}

impl Scratch {
    /// Scratch sized for trees of depth ≤ `max_depth` (root = 0). The
    /// quadrature tables are installed per tree by the kernel; buffers
    /// grow on demand if a deeper tree shows up.
    pub fn for_depth(max_depth: usize) -> Scratch {
        Scratch {
            levels: max_depth + 1,
            elem_stride: max_depth + 1,
            m: 0,
            elems: Vec::new(),
            v: Vec::new(),
            riu: Vec::new(),
            vleaf: Vec::new(),
            rleaf: Vec::new(),
            svc: Vec::new(),
            stack: Vec::with_capacity(max_depth + 2),
            qt: Vec::new(),
            qw: Vec::new(),
            omt: Vec::new(),
            ic: Vec::new(),
            iu: Vec::new(),
        }
    }

    /// Installs the quadrature tables for `tree`: rule order
    /// `m = ⌈max_unique_path/2⌉` (exact for every leaf polynomial of this
    /// tree), derived point tables, and the per-node inverse rows shared
    /// by every sample subsequently walked through this tree.
    fn prepare(&mut self, tree: &SoaTree) {
        if tree.max_depth + 1 > self.levels {
            self.levels = tree.max_depth + 1;
            self.elem_stride = tree.max_depth + 1;
        }
        let m = tree.max_unique_path.div_ceil(2).max(1);
        if m != self.m {
            let (t, w) = gauss_legendre_01(m);
            self.omt = t.iter().map(|&t| 1.0 - t).collect();
            self.ic = self.omt.iter().map(|&o| 1.0 / o).collect();
            self.qt = t;
            self.qw = w;
            self.m = m;
        }
        self.elems.clear();
        self.elems
            .resize(self.levels * self.elem_stride, EMPTY_ELEM);
        self.v.clear();
        self.v.resize(self.levels * m, 0.0);
        self.riu.clear();
        self.riu.resize(self.levels * m, 0.0);
        self.vleaf.clear();
        self.vleaf.resize(m, 0.0);
        self.rleaf.clear();
        self.rleaf.resize(m, 0.0);
        self.svc.clear();
        self.svc.resize(tree.n_classes, 0.0);
        let n = tree.num_nodes();
        self.iu.clear();
        self.iu.resize(n * m, 0.0);
        for i in 0..n {
            let r = tree.ratio[i];
            let row = &mut self.iu[i * m..(i + 1) * m];
            for q in 0..m {
                row[q] = 1.0 / (self.qt[q] + r * self.omt[q]);
            }
        }
    }
}

/// Four-lane dot product — the quadrature sums at a leaf are short
/// (`m = ⌈l_max/2⌉`) serial reductions, so splitting the accumulator
/// breaks the add-latency chain. Deterministic: the fold order depends
/// only on the slice lengths.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let ra = ca.remainder();
    let rb = cb.remainder();
    for (x, y) in ca.zip(cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

/// Iterative TreeSHAP walk of one tree (already installed in `scratch` by
/// `Scratch::prepare`) for one sample, accumulating into the flat
/// row-major `phi[feature * n_classes + class]` buffer (zeroed first).
fn walk(tree: &SoaTree, x: &[f64], scratch: &mut Scratch, phi: &mut [f64]) {
    phi.fill(0.0);
    if tree.is_leaf(0) {
        // Single-node tree: no features to credit.
        return;
    }
    let m = scratch.m;
    let stride = scratch.elem_stride;
    let n_classes = tree.n_classes;
    scratch.stack.clear();
    scratch.stack.push(Frame {
        node: 0,
        depth: 0,
        parent_len: 0,
        feature: NONE,
        merged_slot: NONE,
        one: 1.0,
        ratio: 1.0,
    });
    while let Some(fr) = scratch.stack.pop() {
        let depth = fr.depth as usize;
        let ebase = depth * stride;
        let vbase = depth * m;
        let mut len = fr.parent_len as usize;
        if depth == 0 {
            // Root: empty path — seed each lane with its quadrature
            // weight, so leaf sums integrate by summing lanes directly.
            scratch.v[vbase..vbase + m].copy_from_slice(&scratch.qw[..m]);
        } else {
            // Derive this depth's path and product from the parent's
            // buffers one level up, which stay intact while the whole
            // subtree is processed (descendants only write deeper levels).
            let psrc = (depth - 1) * stride;
            scratch.elems.copy_within(psrc..psrc + len, ebase);
            let qt = &scratch.qt[..m];
            let omt = &scratch.omt[..m];
            let (lo, hi) = scratch.v.split_at_mut(vbase);
            let pv = &lo[vbase - m..];
            let vrow = &mut hi[..m];
            if fr.merged_slot == NONE {
                let r = fr.ratio;
                scratch.elems[ebase + len] = PathElem {
                    feature: fr.feature,
                    src: fr.depth,
                    zero: if fr.one != 0.0 { r } else { -r },
                };
                len += 1;
                if fr.one != 0.0 {
                    // Stage the node's precomputed inverse row in this
                    // depth's slot, so leaf dots read one resident arena.
                    let src = fr.node as usize * m;
                    let irow_src = &scratch.iu[src..src + m];
                    let irow = &mut scratch.riu[vbase..vbase + m];
                    for q in 0..m {
                        vrow[q] = pv[q] * (qt[q] + r * omt[q]);
                        irow[q] = irow_src[q];
                    }
                } else {
                    // Absent-branch elements never dereference a row.
                    for q in 0..m {
                        vrow[q] = pv[q] * (r * omt[q]);
                    }
                }
            } else {
                // The feature already sits on the path: a feature's
                // presence decision is made once, so the two occurrences
                // merge — fractions multiply, and the product swaps the
                // old factor for the merged one.
                let k = ebase + fr.merged_slot as usize;
                let old = scratch.elems[k];
                let old_zero = old.zero.abs();
                let old_one = if old.zero > 0.0 { 1.0 } else { 0.0 };
                let one = old_one * fr.one;
                let zero = old_zero * fr.ratio;
                scratch.elems[k] = PathElem {
                    feature: fr.feature,
                    src: fr.depth,
                    zero: if one != 0.0 { zero } else { -zero },
                };
                let irow = &mut scratch.riu[vbase..vbase + m];
                for q in 0..m {
                    let u_old = old_one * qt[q] + old_zero * omt[q];
                    let u_new = one * qt[q] + zero * omt[q];
                    vrow[q] = pv[q] * u_new / u_old;
                    irow[q] = 1.0 / u_new;
                }
            }
        }

        let node = fr.node as usize;
        let feature = tree.feature[node];
        let (hot, cold) = if x[feature as usize] <= tree.threshold[node] {
            (tree.left[node], tree.right[node])
        } else {
            (tree.right[node], tree.left[node])
        };
        let merged_slot = scratch.elems[ebase..ebase + len]
            .iter()
            .position(|e| e.feature == feature)
            .map_or(NONE, |p| p as u32);
        // Cold pushed below hot: popping processes the hot subtree first,
        // so its arrays stay cache-warm along the sample's own decision
        // path. Leaf children never get a frame — their contribution is
        // folded right here from the parent's buffers.
        for (child, one) in [(cold, 0.0f64), (hot, 1.0f64)] {
            let cnode = child as usize;
            let r = tree.ratio[cnode];
            if !tree.is_leaf(cnode) {
                scratch.stack.push(Frame {
                    node: child,
                    depth: fr.depth + 1,
                    parent_len: len as u32,
                    feature,
                    merged_slot,
                    one,
                    ratio: r,
                });
                continue;
            }
            // Derive the leaf's product row (and, after a merge, its
            // inverse row) from the parent's without touching the arenas.
            let hot_child = one != 0.0;
            let own_zero;
            let own_hot;
            {
                let vrow = &scratch.v[vbase..vbase + m];
                let qt = &scratch.qt[..m];
                let omt = &scratch.omt[..m];
                let vleaf = &mut scratch.vleaf[..m];
                if merged_slot == NONE {
                    own_zero = r;
                    own_hot = hot_child;
                    if hot_child {
                        for q in 0..m {
                            vleaf[q] = vrow[q] * (qt[q] + r * omt[q]);
                        }
                    } else {
                        for q in 0..m {
                            vleaf[q] = vrow[q] * (r * omt[q]);
                        }
                    }
                } else {
                    let old = scratch.elems[ebase + merged_slot as usize];
                    let old_zero = old.zero.abs();
                    let old_one = if old.zero > 0.0 { 1.0 } else { 0.0 };
                    let one_m = if hot_child { old_one } else { 0.0 };
                    own_zero = old_zero * r;
                    own_hot = one_m != 0.0;
                    let rleaf = &mut scratch.rleaf[..m];
                    for q in 0..m {
                        let u_old = old_one * qt[q] + old_zero * omt[q];
                        let u_new = one_m * qt[q] + own_zero * omt[q];
                        vleaf[q] = vrow[q] * u_new / u_old;
                        rleaf[q] = 1.0 / u_new;
                    }
                }
            }
            // V carries ω_q, so the shared absent-feature integral is
            // Σ_q V_q/(1−t_q) (each feature's own zero fraction cancels
            // algebraically).
            let vleaf = &scratch.vleaf[..m];
            let s_cold = dot(&scratch.ic[..m], vleaf);
            let (classes, vals) = tree.leaf_nonzero(cnode);
            // Every absent element credits this leaf by the same
            // `−s_cold · v` products; computing them once per leaf keeps
            // the multiplications and the add order into `phi` identical,
            // so results stay bit-for-bit unchanged.
            let svc = &mut scratch.svc[..vals.len()];
            for (s, &v) in svc.iter_mut().zip(vals) {
                *s = -s_cold * v;
            }
            let svc = &scratch.svc[..vals.len()];
            let skip = if merged_slot == NONE {
                usize::MAX
            } else {
                merged_slot as usize
            };
            for (idx, e) in scratch.elems[ebase..ebase + len].iter().enumerate() {
                if idx == skip {
                    continue;
                }
                let f = e.feature as usize * n_classes;
                if e.zero < 0.0 {
                    for (&c, &s) in classes.iter().zip(svc) {
                        phi[f + c as usize] += s;
                    }
                } else {
                    let off = e.src as usize * m;
                    let scale = (1.0 - e.zero) * dot(vleaf, &scratch.riu[off..off + m]);
                    for (&c, &v) in classes.iter().zip(vals) {
                        phi[f + c as usize] += scale * v;
                    }
                }
            }
            // The split feature's own element at this leaf.
            let f = feature as usize * n_classes;
            if !own_hot {
                for (&c, &s) in classes.iter().zip(svc) {
                    phi[f + c as usize] += s;
                }
            } else {
                let own_scale = if merged_slot == NONE {
                    let src = cnode * m;
                    (1.0 - own_zero) * dot(vleaf, &scratch.iu[src..src + m])
                } else {
                    (1.0 - own_zero) * dot(vleaf, &scratch.rleaf[..m])
                };
                for (&c, &v) in classes.iter().zip(vals) {
                    phi[f + c as usize] += own_scale * v;
                }
            }
        }
    }
}

/// `Scratch::prepare` + [`walk`] for one (tree, sample) pair. Batch
/// callers prepare once per tree and call [`walk`] directly.
fn soa_tree_shap(tree: &SoaTree, x: &[f64], scratch: &mut Scratch, phi: &mut [f64]) {
    scratch.prepare(tree);
    walk(tree, x, scratch, phi);
}

/// Forest SHAP for one sample into a flat `features × classes` accumulator:
/// per-tree walks accumulate in strict forest order, then scale by 1/T.
/// `phi_tree` and `acc` must both hold `n_features * n_classes` slots.
fn soa_forest_shap_into(
    forest: &SoaForest,
    x: &[f64],
    scratch: &mut Scratch,
    phi_tree: &mut [f64],
    acc: &mut [f64],
) {
    acc.fill(0.0);
    for tree in &forest.trees {
        soa_tree_shap(tree, x, scratch, phi_tree);
        for (a, &p) in acc.iter_mut().zip(phi_tree.iter()) {
            *a += p;
        }
    }
    let inv = 1.0 / forest.trees.len() as f64;
    for a in acc.iter_mut() {
        *a *= inv;
    }
}

/// Unflattens a row-major `features × classes` buffer into the historical
/// `phi[feature][class]` shape.
fn unflatten(flat: &[f64], n_features: usize, n_classes: usize) -> Vec<Vec<f64>> {
    (0..n_features)
        .map(|f| flat[f * n_classes..(f + 1) * n_classes].to_vec())
        .collect()
}

/// TreeSHAP explanation of one tree for one sample.
///
/// Returns `phi[feature][class]`; together with the base value (the root's
/// cover-weighted expectation, [`base_value`]) these satisfy local accuracy:
/// `Σ_f phi[f][c] + base[c] = predict_proba(x)[c]`.
///
/// ```
/// use icn_forest::{DecisionTree, TrainSet, TreeConfig};
/// use icn_shap::{base_value, tree_shap};
/// use icn_stats::{Matrix, Rng};
/// let ts = TrainSet::new(
///     Matrix::from_rows(&[vec![0.0], vec![0.2], vec![0.9], vec![1.0]]),
///     vec![0, 0, 1, 1],
/// );
/// let rows: Vec<usize> = (0..4).collect();
/// let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut Rng::seed_from(1));
/// let x = [0.95];
/// let phi = tree_shap(&tree, &x);
/// let base = base_value(&tree);
/// let pred = tree.predict_proba(&x);
/// for c in 0..2 {
///     assert!((phi[0][c] + base[c] - pred[c]).abs() < 1e-12); // local accuracy
/// }
/// ```
pub fn tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(x.len(), tree.n_features, "tree_shap: feature mismatch");
    let soa = SoaTree::from_tree(tree);
    let mut scratch = Scratch::for_depth(soa.max_depth);
    let mut phi = vec![0.0f64; tree.n_features * tree.n_classes];
    soa_tree_shap(&soa, x, &mut scratch, &mut phi);
    unflatten(&phi, tree.n_features, tree.n_classes)
}

/// The base (expected) value of a tree: its output with every feature
/// absent — the cover-weighted average over leaves, which for our trees is
/// simply the root's class distribution.
pub fn base_value(tree: &DecisionTree) -> Vec<f64> {
    crate::exact::tree_expectation(
        tree,
        &vec![0.0; tree.n_features],
        &vec![false; tree.n_features],
    )
}

/// TreeSHAP explanation of a random forest for one sample: the average of
/// per-tree explanations (Shapley values are linear in the model).
/// Returns `phi[feature][class]`.
///
/// Freezes the forest into [`SoaForest`] form first; callers explaining
/// many samples should freeze once and use [`forest_shap_soa`] or the
/// batch APIs.
pub fn forest_shap(forest: &RandomForest, x: &[f64]) -> Vec<Vec<f64>> {
    forest_shap_soa(&SoaForest::from_forest(forest), x)
}

/// [`forest_shap`] over an already-frozen forest.
pub fn forest_shap_soa(forest: &SoaForest, x: &[f64]) -> Vec<Vec<f64>> {
    let mut scratch = Scratch::for_depth(forest.max_depth);
    let fc = forest.n_features * forest.n_classes;
    let mut phi_tree = vec![0.0f64; fc];
    let mut acc = vec![0.0f64; fc];
    soa_forest_shap_into(forest, x, &mut scratch, &mut phi_tree, &mut acc);
    unflatten(&acc, forest.n_features, forest.n_classes)
}

/// Forest base values: mean of per-tree base values.
pub fn forest_base_value(forest: &RandomForest) -> Vec<f64> {
    let mut acc = vec![0.0f64; forest.n_classes];
    for tree in &forest.trees {
        for (a, b) in acc.iter_mut().zip(base_value(tree)) {
            *a += b;
        }
    }
    let inv = 1.0 / forest.trees.len() as f64;
    acc.iter().map(|v| v * inv).collect()
}

/// SHAP values of a forest for **one output class** across a batch of
/// samples: returns a `samples × features` matrix — the shape the Figure 5
/// beeswarm plots consume. Computed in parallel over samples.
///
/// When several classes are needed, prefer [`forest_shap_batch`], which
/// pays the per-sample tree walks once for all classes.
pub fn forest_shap_class_matrix(forest: &RandomForest, x: &Matrix, class: usize) -> Matrix {
    assert!(
        class < forest.n_classes,
        "forest_shap_class_matrix: bad class"
    );
    let mut all = forest_shap_batch(forest, x);
    all.swap_remove(class)
}

/// SHAP values of a forest for **all output classes** across a batch of
/// samples in one parallel pass: returns one `samples × features` matrix
/// per class. The expensive per-sample tree walks are shared across
/// classes, so this is ~`n_classes`× cheaper than calling
/// [`forest_shap_class_matrix`] per class.
pub fn forest_shap_batch(forest: &RandomForest, x: &Matrix) -> Vec<Matrix> {
    assert_eq!(x.cols(), forest.n_features, "feature mismatch");
    forest_shap_batch_soa(&SoaForest::from_forest(forest), x)
}

/// [`forest_shap_batch`] over an already-frozen forest — the stage-3 hot
/// path. Samples are processed in parallel chunks; within a chunk the walk
/// is tree-major (every sample of the chunk walks tree t before any walks
/// tree t+1), so one tree's quadrature tables are installed once and its
/// arrays stay cache-hot, while each sample's accumulator still folds
/// trees in strict forest order. Chunk boundaries never enter any
/// floating-point expression, so results are bit-identical for every
/// thread count and chunk size.
pub fn forest_shap_batch_soa(forest: &SoaForest, x: &Matrix) -> Vec<Matrix> {
    assert_eq!(x.cols(), forest.n_features, "feature mismatch");
    let _span = icn_obs::Span::enter("shap_batch");
    let obs = icn_obs::global();
    let started = obs.is_enabled().then(std::time::Instant::now);

    let n = x.rows();
    let fc = forest.n_features * forest.n_classes;
    let inv = 1.0 / forest.trees.len().max(1) as f64;
    let chunk = shap_chunk_size(n);
    // Each chunk returns its samples' flat phi buffers concatenated.
    let chunks: Vec<Vec<f64>> = par::map_chunks(n, chunk, |range| {
        let mut chunk_span = icn_obs::Span::enter("shap_chunk");
        chunk_span.attr("start", range.start as u64);
        chunk_span.attr("samples", range.len() as u64);
        let chunk_t0 = chunk_span.path().is_some().then(std::time::Instant::now);
        let mut scratch = Scratch::for_depth(forest.max_depth);
        let mut phi_tree = vec![0.0f64; fc];
        let mut acc = vec![0.0f64; fc * range.len()];
        for tree in &forest.trees {
            scratch.prepare(tree);
            for (si, i) in range.clone().enumerate() {
                walk(tree, x.row(i), &mut scratch, &mut phi_tree);
                for (a, &p) in acc[si * fc..(si + 1) * fc].iter_mut().zip(phi_tree.iter()) {
                    *a += p;
                }
            }
        }
        for a in acc.iter_mut() {
            *a *= inv;
        }
        if let Some(t0) = chunk_t0 {
            obs.record_hist("shap.chunk_ns", t0.elapsed().as_nanos() as u64);
        }
        acc
    });

    // One flush for the whole batch: every sample walks every tree once.
    obs.add_counter("shap.tree_walks", (n * forest.trees.len()) as u64);
    if let Some(t0) = started {
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            obs.set_gauge("shap.samples_per_sec", n as f64 / secs);
        }
    }

    let flat: Vec<f64> = chunks.into_iter().flatten().collect();
    (0..forest.n_classes)
        .map(|c| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..forest.n_features)
                        .map(|f| flat[i * fc + f * forest.n_classes + c])
                        .collect()
                })
                .collect();
            Matrix::from_rows(&rows)
        })
        .collect()
}

/// Sample-chunk width for the batched SHAP walk: large enough that the
/// per-tree table preparation amortizes over a chunk's samples, small
/// enough to load-balance chunks across workers. Never affects results.
fn shap_chunk_size(n: usize) -> usize {
    (n / (par::thread_count() * 2)).clamp(16, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_tree_shap;
    use icn_forest::{ForestConfig, TrainSet, TreeConfig};
    use icn_stats::{Matrix, Rng};

    fn training_set(seed: u64, m: usize, n: usize) -> TrainSet {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..m).map(|_| rng.uniform(0.0, 1.0)).collect();
            // Nonlinear 3-class rule over the first three features.
            let score = x[0] + 0.7 * x[1 % m] - 0.5 * x[2 % m];
            let label = if score > 0.9 {
                2
            } else if score > 0.5 {
                1
            } else {
                0
            };
            rows.push(x);
            labels.push(label);
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    fn fit_tree(ts: &TrainSet, seed: u64) -> icn_forest::DecisionTree {
        let all: Vec<usize> = (0..ts.len()).collect();
        icn_forest::DecisionTree::fit(ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed))
    }

    #[test]
    fn matches_exact_enumeration() {
        // The heart of the validation: TreeSHAP == brute-force Shapley.
        for seed in [1u64, 2, 3] {
            let ts = training_set(seed, 5, 80);
            let tree = fit_tree(&ts, seed);
            for i in (0..ts.len()).step_by(17) {
                let x = ts.x.row(i);
                let fast = tree_shap(&tree, x);
                let (slow, _) = exact_tree_shap(&tree, x);
                for f in 0..5 {
                    for c in 0..tree.n_classes {
                        assert!(
                            (fast[f][c] - slow[f][c]).abs() < 1e-9,
                            "seed {seed} sample {i} feature {f} class {c}: {} vs {}",
                            fast[f][c],
                            slow[f][c]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn local_accuracy_single_tree() {
        let ts = training_set(4, 6, 100);
        let tree = fit_tree(&ts, 4);
        let base = base_value(&tree);
        for i in (0..ts.len()).step_by(13) {
            let x = ts.x.row(i);
            let phi = tree_shap(&tree, x);
            let pred = tree.predict_proba(x);
            for c in 0..tree.n_classes {
                let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "sample {i} class {c}: {total} vs {}",
                    pred[c]
                );
            }
        }
    }

    #[test]
    fn local_accuracy_forest() {
        let ts = training_set(5, 6, 120);
        let forest = icn_forest::RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 12,
                ..ForestConfig::default()
            },
        );
        let base = forest_base_value(&forest);
        for i in (0..ts.len()).step_by(29) {
            let x = ts.x.row(i);
            let phi = forest_shap(&forest, x);
            let pred = forest.predict_proba(x);
            for c in 0..forest.n_classes {
                let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "sample {i} class {c}: {total} vs {}",
                    pred[c]
                );
            }
        }
    }

    #[test]
    fn repeated_feature_on_path_handled() {
        // Deep tree on a single feature: splits reuse the same feature at
        // several depths, exercising the merge/imu branch.
        let mut rng = Rng::seed_from(6);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..100 {
            let v = rng.uniform(0.0, 4.0);
            rows.push(vec![v]);
            labels.push((v as usize).min(3));
        }
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let tree = fit_tree(&ts, 6);
        assert!(tree.depth() >= 2, "need depth to reuse the feature");
        let base = base_value(&tree);
        for x in [[0.5], [1.5], [2.5], [3.5]] {
            let phi = tree_shap(&tree, &x);
            let pred = tree.predict_proba(&x);
            for c in 0..tree.n_classes {
                let total = phi[0][c] + base[c];
                assert!((total - pred[c]).abs() < 1e-9, "x {x:?} class {c}");
            }
        }
    }

    #[test]
    fn repeated_feature_matches_exact_enumeration() {
        // Two features, deep tree: features recur along paths in both hot
        // and cold positions, covering every merge combination against the
        // 2^M oracle.
        let mut rng = Rng::seed_from(13);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..150 {
            let a = rng.uniform(0.0, 4.0);
            let b = rng.uniform(0.0, 4.0);
            rows.push(vec![a, b]);
            labels.push(((a + b) as usize / 2).min(3));
        }
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let tree = fit_tree(&ts, 13);
        for i in (0..ts.len()).step_by(11) {
            let x = ts.x.row(i);
            let fast = tree_shap(&tree, x);
            let (slow, _) = exact_tree_shap(&tree, x);
            for f in 0..2 {
                for c in 0..tree.n_classes {
                    assert!(
                        (fast[f][c] - slow[f][c]).abs() < 1e-9,
                        "sample {i} feature {f} class {c}: {} vs {}",
                        fast[f][c],
                        slow[f][c]
                    );
                }
            }
        }
    }

    #[test]
    fn stump_tree_returns_zero_phi() {
        let ts = TrainSet::new(Matrix::from_rows(&[vec![1.0], vec![1.0]]), vec![0, 0]);
        let tree = fit_tree(&ts, 7);
        assert!(tree.nodes[0].is_leaf());
        let phi = tree_shap(&tree, &[1.0]);
        assert_eq!(phi, vec![vec![0.0]]);
    }

    #[test]
    fn class_matrix_shape_and_content() {
        let ts = training_set(8, 4, 60);
        let forest = icn_forest::RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
        );
        let m = forest_shap_class_matrix(&forest, &ts.x, 1);
        assert_eq!(m.shape(), (60, 4));
        // Spot-check one row against the per-sample API.
        let phi = forest_shap(&forest, ts.x.row(7));
        for f in 0..4 {
            assert!((m.get(7, f) - phi[f][1]).abs() < 1e-12);
        }
    }

    #[test]
    fn base_value_is_class_prior() {
        let ts = training_set(9, 4, 200);
        let tree = fit_tree(&ts, 9);
        let base = base_value(&tree);
        // Base = training-class proportions at the root.
        let mut prior = vec![0.0; tree.n_classes];
        for &y in &ts.y {
            prior[y] += 1.0 / ts.len() as f64;
        }
        for (b, p) in base.iter().zip(&prior) {
            assert!((b - p).abs() < 1e-9);
        }
    }

    #[test]
    fn scratch_reuse_across_dissimilar_trees() {
        // One Scratch must serve trees of different depths and quadrature
        // orders back to back (the batch kernel reuses it tree-major);
        // stale arena contents must never leak into a later walk.
        let deep_ts = training_set(10, 5, 150);
        let deep = fit_tree(&deep_ts, 10);
        let shallow_ts = training_set(11, 5, 12);
        let shallow = fit_tree(&shallow_ts, 11);
        let soa_deep = SoaTree::from_tree(&deep);
        let soa_shallow = SoaTree::from_tree(&shallow);
        let max_depth = soa_deep.max_depth.max(soa_shallow.max_depth);
        let mut scratch = Scratch::for_depth(max_depth);
        let x = deep_ts.x.row(3);
        let fc = 5 * deep.n_classes;
        let mut phi = vec![0.0f64; fc];
        // Dirty the arena with the deep tree, then walk the shallow one.
        soa_tree_shap(&soa_deep, x, &mut scratch, &mut phi);
        let first = {
            let mut p = vec![0.0f64; 5 * shallow.n_classes];
            soa_tree_shap(&soa_shallow, x, &mut scratch, &mut p);
            p
        };
        let fresh = {
            let mut s = Scratch::for_depth(soa_shallow.max_depth);
            let mut p = vec![0.0f64; 5 * shallow.n_classes];
            soa_tree_shap(&soa_shallow, x, &mut s, &mut p);
            p
        };
        for (a, b) in first.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_soa_matches_per_sample_bitwise() {
        let ts = training_set(12, 5, 90);
        let forest = icn_forest::RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
        );
        let soa = SoaForest::from_forest(&forest);
        let batched = forest_shap_batch_soa(&soa, &ts.x);
        for i in 0..ts.len() {
            let phi = forest_shap_soa(&soa, ts.x.row(i));
            for c in 0..forest.n_classes {
                for f in 0..forest.n_features {
                    assert_eq!(
                        batched[c].get(i, f).to_bits(),
                        phi[f][c].to_bits(),
                        "sample {i} class {c} feature {f}"
                    );
                }
            }
        }
    }
}
