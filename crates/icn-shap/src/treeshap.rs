//! TreeSHAP — polynomial-time exact Shapley values for decision trees.
//!
//! The paper uses the TreeShap model-specific approximation "employed for
//! tree-based ML algorithms such as random forests" because it is
//! "dramatically faster" than model-agnostic estimation (Section 5.1.1).
//! This is the path-dependent algorithm of Lundberg et al.: a single
//! recursive descent per tree maintains, for every unique feature on the
//! current root-to-node path, the proportion of feature-subsets in which
//! the path is followed with the feature present (`one_fraction`) or absent
//! (`zero_fraction`), together with subset-cardinality weights. At a leaf,
//! unwinding each path feature yields its exact Shapley contribution.
//!
//! Complexity is O(L·D²) per tree and sample (L leaves, D depth) instead of
//! the 2^M enumeration of [`crate::exact`], against which the unit tests
//! verify exact agreement.

use icn_forest::{DecisionTree, RandomForest};
use icn_stats::{par, Matrix};

/// One element of the feature path maintained during the descent.
#[derive(Clone, Copy, Debug)]
struct PathElem {
    /// Feature index (usize::MAX for the dummy first element).
    feature: usize,
    /// Fraction of "absent" subsets flowing down this branch.
    zero_fraction: f64,
    /// 1.0 if `x` follows this branch, else 0.0.
    one_fraction: f64,
    /// Permutation-weight accumulator per path cardinality.
    weight: f64,
}

/// Extends the path with a new feature split.
fn extend(path: &mut Vec<PathElem>, zero_fraction: f64, one_fraction: f64, feature: usize) {
    let l = path.len();
    path.push(PathElem {
        feature,
        zero_fraction,
        one_fraction,
        weight: if l == 0 { 1.0 } else { 0.0 },
    });
    // Update cardinality weights from the back.
    for i in (0..l).rev() {
        path[i + 1].weight += one_fraction * path[i].weight * (i + 1) as f64 / (l + 1) as f64;
        path[i].weight = zero_fraction * path[i].weight * (l - i) as f64 / (l + 1) as f64;
    }
}

/// Removes path element `i`, undoing its `extend` contribution.
fn unwind(path: &mut Vec<PathElem>, i: usize) {
    let l = path.len() - 1;
    let one = path[i].one_fraction;
    let zero = path[i].zero_fraction;
    let mut n = path[l].weight;
    if one != 0.0 {
        for j in (0..l).rev() {
            let t = path[j].weight;
            path[j].weight = n * (l + 1) as f64 / ((j + 1) as f64 * one);
            n = t - path[j].weight * zero * (l - j) as f64 / (l + 1) as f64;
        }
    } else {
        for j in (0..l).rev() {
            path[j].weight = path[j].weight * (l + 1) as f64 / (zero * (l - j) as f64);
        }
    }
    for j in i..l {
        path[j].feature = path[j + 1].feature;
        path[j].zero_fraction = path[j + 1].zero_fraction;
        path[j].one_fraction = path[j + 1].one_fraction;
    }
    path.pop();
}

/// Sum of weights after (virtually) unwinding element `i` — the permutation
/// mass attributable to that feature at a leaf. Implemented by unwinding a
/// scratch copy; O(D) extra per call, O(D²) per leaf, negligible at our
/// depths.
fn unwound_weight_sum(path: &[PathElem], i: usize) -> f64 {
    let mut scratch = path.to_vec();
    unwind(&mut scratch, i);
    scratch.iter().map(|e| e.weight).sum()
}

/// Recursive TreeSHAP descent.
#[allow(clippy::too_many_arguments)]
fn recurse(
    tree: &DecisionTree,
    x: &[f64],
    phi: &mut [Vec<f64>],
    node_idx: usize,
    mut path: Vec<PathElem>,
    zero_fraction: f64,
    one_fraction: f64,
    feature: usize,
) {
    extend(&mut path, zero_fraction, one_fraction, feature);
    let node = &tree.nodes[node_idx];

    if node.is_leaf() {
        // Attribute to every real feature on the path.
        for i in 1..path.len() {
            let w = unwound_weight_sum(&path, i);
            let el = path[i];
            let scale = w * (el.one_fraction - el.zero_fraction);
            let f = el.feature;
            for (c, &v) in node.distribution.iter().enumerate() {
                phi[f][c] += scale * v;
            }
        }
        return;
    }

    let (hot, cold) = if x[node.feature] <= node.threshold {
        (node.left, node.right)
    } else {
        (node.right, node.left)
    };
    let hot_zero = tree.nodes[hot].cover / node.cover;
    let cold_zero = tree.nodes[cold].cover / node.cover;
    let mut incoming_zero = 1.0;
    let mut incoming_one = 1.0;

    // If this feature already appeared on the path, undo its earlier entry
    // and inherit its fractions (a feature's presence decision is made
    // once).
    if let Some(k) = path
        .iter()
        .enumerate()
        .skip(1)
        .find(|(_, e)| e.feature == node.feature)
        .map(|(k, _)| k)
    {
        incoming_zero = path[k].zero_fraction;
        incoming_one = path[k].one_fraction;
        unwind(&mut path, k);
    }

    recurse(
        tree,
        x,
        phi,
        hot,
        path.clone(),
        incoming_zero * hot_zero,
        incoming_one,
        node.feature,
    );
    recurse(
        tree,
        x,
        phi,
        cold,
        path,
        incoming_zero * cold_zero,
        0.0,
        node.feature,
    );
}

/// TreeSHAP explanation of one tree for one sample.
///
/// Returns `phi[feature][class]`; together with the base value (the root's
/// cover-weighted expectation, [`base_value`]) these satisfy local accuracy:
/// `Σ_f phi[f][c] + base[c] = predict_proba(x)[c]`.
///
/// ```
/// use icn_forest::{DecisionTree, TrainSet, TreeConfig};
/// use icn_shap::{base_value, tree_shap};
/// use icn_stats::{Matrix, Rng};
/// let ts = TrainSet::new(
///     Matrix::from_rows(&[vec![0.0], vec![0.2], vec![0.9], vec![1.0]]),
///     vec![0, 0, 1, 1],
/// );
/// let rows: Vec<usize> = (0..4).collect();
/// let tree = DecisionTree::fit(&ts, &rows, &TreeConfig::default(), &mut Rng::seed_from(1));
/// let x = [0.95];
/// let phi = tree_shap(&tree, &x);
/// let base = base_value(&tree);
/// let pred = tree.predict_proba(&x);
/// for c in 0..2 {
///     assert!((phi[0][c] + base[c] - pred[c]).abs() < 1e-12); // local accuracy
/// }
/// ```
pub fn tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(x.len(), tree.n_features, "tree_shap: feature mismatch");
    let mut phi = vec![vec![0.0f64; tree.n_classes]; tree.n_features];
    // Single-node tree: no features to credit.
    if tree.nodes[0].is_leaf() {
        return phi;
    }
    recurse(
        tree,
        x,
        &mut phi,
        0,
        Vec::with_capacity(16),
        1.0,
        1.0,
        usize::MAX,
    );
    phi
}

/// The base (expected) value of a tree: its output with every feature
/// absent — the cover-weighted average over leaves, which for our trees is
/// simply the root's class distribution.
pub fn base_value(tree: &DecisionTree) -> Vec<f64> {
    crate::exact::tree_expectation(
        tree,
        &vec![0.0; tree.n_features],
        &vec![false; tree.n_features],
    )
}

/// TreeSHAP explanation of a random forest for one sample: the average of
/// per-tree explanations (Shapley values are linear in the model).
/// Returns `phi[feature][class]`.
pub fn forest_shap(forest: &RandomForest, x: &[f64]) -> Vec<Vec<f64>> {
    let mut acc = vec![vec![0.0f64; forest.n_classes]; forest.n_features];
    for tree in &forest.trees {
        let phi = tree_shap(tree, x);
        for (a_row, p_row) in acc.iter_mut().zip(&phi) {
            for (a, &p) in a_row.iter_mut().zip(p_row) {
                *a += p;
            }
        }
    }
    let inv = 1.0 / forest.trees.len() as f64;
    for row in &mut acc {
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    acc
}

/// Forest base values: mean of per-tree base values.
pub fn forest_base_value(forest: &RandomForest) -> Vec<f64> {
    let mut acc = vec![0.0f64; forest.n_classes];
    for tree in &forest.trees {
        for (a, b) in acc.iter_mut().zip(base_value(tree)) {
            *a += b;
        }
    }
    let inv = 1.0 / forest.trees.len() as f64;
    acc.iter().map(|v| v * inv).collect()
}

/// SHAP values of a forest for **one output class** across a batch of
/// samples: returns a `samples × features` matrix — the shape the Figure 5
/// beeswarm plots consume. Computed in parallel over samples.
///
/// When several classes are needed, prefer [`forest_shap_batch`], which
/// pays the per-sample tree walks once for all classes.
pub fn forest_shap_class_matrix(forest: &RandomForest, x: &Matrix, class: usize) -> Matrix {
    assert!(
        class < forest.n_classes,
        "forest_shap_class_matrix: bad class"
    );
    let mut all = forest_shap_batch(forest, x);
    all.swap_remove(class)
}

/// SHAP values of a forest for **all output classes** across a batch of
/// samples in one parallel pass: returns one `samples × features` matrix
/// per class. The expensive per-sample tree walks are shared across
/// classes, so this is ~`n_classes`× cheaper than calling
/// [`forest_shap_class_matrix`] per class.
pub fn forest_shap_batch(forest: &RandomForest, x: &Matrix) -> Vec<Matrix> {
    assert_eq!(x.cols(), forest.n_features, "feature mismatch");
    let _span = icn_obs::Span::enter("shap_batch");
    let per_sample: Vec<Vec<Vec<f64>>> =
        par::map_indexed(x.rows(), |i| forest_shap(forest, x.row(i)));
    // One flush for the whole batch: every sample walks every tree once.
    icn_obs::global().add_counter("shap.tree_walks", (x.rows() * forest.trees.len()) as u64);
    (0..forest.n_classes)
        .map(|c| {
            let rows: Vec<Vec<f64>> = per_sample
                .iter()
                .map(|phi| phi.iter().map(|per_class| per_class[c]).collect())
                .collect();
            Matrix::from_rows(&rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_tree_shap;
    use icn_forest::{ForestConfig, TrainSet, TreeConfig};
    use icn_stats::{Matrix, Rng};

    fn training_set(seed: u64, m: usize, n: usize) -> TrainSet {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..m).map(|_| rng.uniform(0.0, 1.0)).collect();
            // Nonlinear 3-class rule over the first three features.
            let score = x[0] + 0.7 * x[1 % m] - 0.5 * x[2 % m];
            let label = if score > 0.9 {
                2
            } else if score > 0.5 {
                1
            } else {
                0
            };
            rows.push(x);
            labels.push(label);
        }
        TrainSet::new(Matrix::from_rows(&rows), labels)
    }

    fn fit_tree(ts: &TrainSet, seed: u64) -> icn_forest::DecisionTree {
        let all: Vec<usize> = (0..ts.len()).collect();
        icn_forest::DecisionTree::fit(ts, &all, &TreeConfig::default(), &mut Rng::seed_from(seed))
    }

    #[test]
    fn matches_exact_enumeration() {
        // The heart of the validation: TreeSHAP == brute-force Shapley.
        for seed in [1u64, 2, 3] {
            let ts = training_set(seed, 5, 80);
            let tree = fit_tree(&ts, seed);
            for i in (0..ts.len()).step_by(17) {
                let x = ts.x.row(i);
                let fast = tree_shap(&tree, x);
                let (slow, _) = exact_tree_shap(&tree, x);
                for f in 0..5 {
                    for c in 0..tree.n_classes {
                        assert!(
                            (fast[f][c] - slow[f][c]).abs() < 1e-9,
                            "seed {seed} sample {i} feature {f} class {c}: {} vs {}",
                            fast[f][c],
                            slow[f][c]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn local_accuracy_single_tree() {
        let ts = training_set(4, 6, 100);
        let tree = fit_tree(&ts, 4);
        let base = base_value(&tree);
        for i in (0..ts.len()).step_by(13) {
            let x = ts.x.row(i);
            let phi = tree_shap(&tree, x);
            let pred = tree.predict_proba(x);
            for c in 0..tree.n_classes {
                let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "sample {i} class {c}: {total} vs {}",
                    pred[c]
                );
            }
        }
    }

    #[test]
    fn local_accuracy_forest() {
        let ts = training_set(5, 6, 120);
        let forest = icn_forest::RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 12,
                ..ForestConfig::default()
            },
        );
        let base = forest_base_value(&forest);
        for i in (0..ts.len()).step_by(29) {
            let x = ts.x.row(i);
            let phi = forest_shap(&forest, x);
            let pred = forest.predict_proba(x);
            for c in 0..forest.n_classes {
                let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "sample {i} class {c}: {total} vs {}",
                    pred[c]
                );
            }
        }
    }

    #[test]
    fn repeated_feature_on_path_handled() {
        // Deep tree on a single feature: splits reuse the same feature at
        // several depths, exercising the unwind-inherit branch.
        let mut rng = Rng::seed_from(6);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..100 {
            let v = rng.uniform(0.0, 4.0);
            rows.push(vec![v]);
            labels.push((v as usize).min(3));
        }
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let tree = fit_tree(&ts, 6);
        assert!(tree.depth() >= 2, "need depth to reuse the feature");
        let base = base_value(&tree);
        for x in [[0.5], [1.5], [2.5], [3.5]] {
            let phi = tree_shap(&tree, &x);
            let pred = tree.predict_proba(&x);
            for c in 0..tree.n_classes {
                let total = phi[0][c] + base[c];
                assert!((total - pred[c]).abs() < 1e-9, "x {x:?} class {c}");
            }
        }
    }

    #[test]
    fn stump_tree_returns_zero_phi() {
        let ts = TrainSet::new(Matrix::from_rows(&[vec![1.0], vec![1.0]]), vec![0, 0]);
        let tree = fit_tree(&ts, 7);
        assert!(tree.nodes[0].is_leaf());
        let phi = tree_shap(&tree, &[1.0]);
        assert_eq!(phi, vec![vec![0.0]]);
    }

    #[test]
    fn class_matrix_shape_and_content() {
        let ts = training_set(8, 4, 60);
        let forest = icn_forest::RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
        );
        let m = forest_shap_class_matrix(&forest, &ts.x, 1);
        assert_eq!(m.shape(), (60, 4));
        // Spot-check one row against the per-sample API.
        let phi = forest_shap(&forest, ts.x.row(7));
        for f in 0..4 {
            assert!((m.get(7, f) - phi[f][1]).abs() < 1e-12);
        }
    }

    #[test]
    fn base_value_is_class_prior() {
        let ts = training_set(9, 4, 200);
        let tree = fit_tree(&ts, 9);
        let base = base_value(&tree);
        // Base = training-class proportions at the root.
        let mut prior = vec![0.0; tree.n_classes];
        for &y in &ts.y {
            prior[y] += 1.0 / ts.len() as f64;
        }
        for (b, p) in base.iter().zip(&prior) {
            assert!((b - p).abs() < 1e-9);
        }
    }
}
