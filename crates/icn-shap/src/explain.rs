//! Cluster-level explanation summaries — the data behind Figure 5.
//!
//! Figure 5 of the paper shows, per cluster, a beeswarm of SHAP values: the
//! 25 most influential services ranked by mean |SHAP|, with the colour
//! (feature value) revealing whether membership is driven by over- or
//! under-utilisation. This module reduces a batch SHAP matrix to exactly
//! those statistics: per-feature mean absolute SHAP (the importance), and
//! the correlation between SHAP value and feature value (the direction —
//! positive ⇒ the cluster over-utilises the service, negative ⇒ membership
//! is signalled by *low* feature values, i.e. under-utilisation).

use icn_forest::RandomForest;
use icn_stats::{summary, Matrix};

use crate::treeshap::forest_shap_class_matrix;

/// Direction of a feature's influence on cluster membership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// High feature values push the sample into the class —
    /// over-utilisation characterises the cluster.
    OverUtilized,
    /// Low feature values push the sample into the class —
    /// under-utilisation characterises the cluster.
    UnderUtilized,
    /// No consistent direction.
    Neutral,
}

/// Summary of one feature's role in one class's explanation.
#[derive(Clone, Debug)]
pub struct FeatureInfluence {
    /// Feature (service) index.
    pub feature: usize,
    /// Mean absolute SHAP value — the ranking key of Figure 5.
    pub mean_abs_shap: f64,
    /// Pearson correlation between SHAP values and feature values.
    pub shap_value_correlation: f64,
    /// Mean SHAP among the class's own members (positive: the feature
    /// actively votes *for* membership on members).
    pub mean_shap_on_members: f64,
    /// Direction classification.
    pub direction: Direction,
}

/// Full explanation of one class (cluster): features ranked by importance.
#[derive(Clone, Debug)]
pub struct ClassExplanation {
    /// Explained class (cluster id).
    pub class: usize,
    /// Features in descending `mean_abs_shap` order.
    pub influences: Vec<FeatureInfluence>,
}

impl ClassExplanation {
    /// The `k` most influential features (the paper shows 25).
    pub fn top(&self, k: usize) -> &[FeatureInfluence] {
        &self.influences[..k.min(self.influences.len())]
    }
}

/// Threshold on |correlation| below which a feature is Neutral.
const DIRECTION_CORR_THRESHOLD: f64 = 0.1;

/// Builds the Figure 5 statistics for one class from a SHAP matrix
/// (`samples × features`), the corresponding feature matrix and the
/// predicted labels.
pub fn explain_class(
    shap: &Matrix,
    features: &Matrix,
    labels: &[usize],
    class: usize,
) -> ClassExplanation {
    assert_eq!(
        shap.shape(),
        features.shape(),
        "explain_class: shape mismatch"
    );
    assert_eq!(labels.len(), shap.rows(), "explain_class: label mismatch");
    let m = shap.cols();
    let mut influences: Vec<FeatureInfluence> = (0..m)
        .map(|f| {
            let s_col = shap.col(f);
            let x_col = features.col(f);
            let mean_abs = s_col.iter().map(|v| v.abs()).sum::<f64>() / s_col.len() as f64;
            let corr = summary::pearson(&s_col, &x_col);
            let members: Vec<f64> = s_col
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == class)
                .map(|(&s, _)| s)
                .collect();
            let mean_members = if members.is_empty() {
                0.0
            } else {
                members.iter().sum::<f64>() / members.len() as f64
            };
            let direction = if corr > DIRECTION_CORR_THRESHOLD {
                Direction::OverUtilized
            } else if corr < -DIRECTION_CORR_THRESHOLD {
                Direction::UnderUtilized
            } else {
                Direction::Neutral
            };
            FeatureInfluence {
                feature: f,
                mean_abs_shap: mean_abs,
                shap_value_correlation: corr,
                mean_shap_on_members: mean_members,
                direction,
            }
        })
        .collect();
    influences.sort_by(|a, b| {
        b.mean_abs_shap
            .partial_cmp(&a.mean_abs_shap)
            .expect("finite")
    });
    ClassExplanation { class, influences }
}

/// End-to-end: computes the SHAP matrix for `class` over all rows of
/// `features` through `forest`, then summarises it.
pub fn explain_forest_class(
    forest: &RandomForest,
    features: &Matrix,
    labels: &[usize],
    class: usize,
) -> ClassExplanation {
    let shap = forest_shap_class_matrix(forest, features, class);
    explain_class(&shap, features, labels, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_forest::{ForestConfig, TrainSet};
    use icn_stats::Rng;

    /// Class 1 ⇔ feature 0 high AND feature 1 low; feature 2 is noise.
    fn setup() -> (RandomForest, TrainSet) {
        let mut rng = Rng::seed_from(42);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..240 {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            let c = rng.uniform(0.0, 1.0);
            rows.push(vec![a, b, c]);
            labels.push(usize::from(a > 0.6 && b < 0.4));
        }
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees: 25,
                ..ForestConfig::default()
            },
        );
        (forest, ts)
    }

    #[test]
    fn informative_features_rank_first() {
        let (forest, ts) = setup();
        let ex = explain_forest_class(&forest, &ts.x, &ts.y, 1);
        let top2: Vec<usize> = ex.top(2).iter().map(|i| i.feature).collect();
        assert!(top2.contains(&0) && top2.contains(&1), "top2 {top2:?}");
        // The noise feature ranks last.
        assert_eq!(ex.influences.last().unwrap().feature, 2);
    }

    #[test]
    fn directions_match_construction() {
        let (forest, ts) = setup();
        let ex = explain_forest_class(&forest, &ts.x, &ts.y, 1);
        let by_feature = |f: usize| {
            ex.influences
                .iter()
                .find(|i| i.feature == f)
                .expect("feature present")
        };
        assert_eq!(by_feature(0).direction, Direction::OverUtilized);
        assert_eq!(by_feature(1).direction, Direction::UnderUtilized);
    }

    #[test]
    fn members_receive_positive_shap() {
        let (forest, ts) = setup();
        let ex = explain_forest_class(&forest, &ts.x, &ts.y, 1);
        // On actual members, the top feature pushes towards the class.
        assert!(ex.top(1)[0].mean_shap_on_members > 0.0);
    }

    #[test]
    fn complementary_class_mirrors_direction() {
        let (forest, ts) = setup();
        // For the binary complement (class 0), feature 0 should be
        // negative-direction: high values push *away* from class 0.
        let ex0 = explain_forest_class(&forest, &ts.x, &ts.y, 0);
        let f0 = ex0.influences.iter().find(|i| i.feature == 0).unwrap();
        assert_eq!(f0.direction, Direction::UnderUtilized);
    }

    #[test]
    fn top_k_clamps() {
        let (forest, ts) = setup();
        let ex = explain_forest_class(&forest, &ts.x, &ts.y, 1);
        assert_eq!(ex.top(99).len(), 3);
        assert_eq!(ex.top(1).len(), 1);
    }
}
