//! # icn-shap — explainable-ML substrate
//!
//! From-scratch Shapley-additive-explanation machinery for the paper's
//! Section 5.1: the clustering result is made interpretable by training a
//! random-forest surrogate (`icn-forest`) and attributing each antenna's
//! predicted cluster to its per-service RSCA features.
//!
//! * [`treeshap`] — the polynomial-time, path-dependent TreeSHAP algorithm
//!   for single trees and forests, exact for the tree's conditional
//!   expectation and validated against brute force.
//! * [`quad`] — Gauss–Legendre nodes/weights on [0, 1]; the TreeSHAP
//!   kernel evaluates the Shapley subset weights in integral form, which
//!   an `⌈l/2⌉`-point rule integrates exactly.
//! * [`exact`] — the 2^M Shapley definition (Eq. 4 of the paper) for small
//!   feature counts; the oracle the fast algorithm is tested against.
//! * [`kernelshap`] — model-agnostic Kernel SHAP: coalition sampling with
//!   Shapley-kernel weights and a constrained weighted-least-squares fit.
//! * [`linalg`] — the small dense WLS solver backing KernelSHAP.
//! * [`explain`] — the Figure 5 statistics: per-cluster mean-|SHAP| service
//!   rankings with over-/under-utilisation directions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod explain;
pub mod kernelshap;
pub mod linalg;
pub mod quad;
pub mod treeshap;

pub use exact::{exact_tree_shap, tree_expectation};
pub use explain::{
    explain_class, explain_forest_class, ClassExplanation, Direction, FeatureInfluence,
};
pub use kernelshap::{kernel_shap, KernelShapConfig, ScalarModel};
pub use quad::gauss_legendre_01;
pub use treeshap::{
    base_value, forest_base_value, forest_shap, forest_shap_batch, forest_shap_batch_soa,
    forest_shap_class_matrix, forest_shap_soa, tree_shap, Scratch,
};
