//! Small dense linear algebra: weighted least squares by Gaussian
//! elimination with partial pivoting.
//!
//! KernelSHAP estimates Shapley values by fitting a weighted linear model
//! over sampled coalitions (Eq. 3 of the paper); this solver handles the
//! resulting normal equations. Sizes are tiny (M × M with M ≤ a few dozen
//! features), so a textbook O(M³) elimination is entirely adequate.

/// Solves `A x = b` for square `A` (row-major, `n × n`) by Gaussian
/// elimination with partial pivoting. Returns `None` for (numerically)
/// singular systems.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "solve: A shape mismatch");
    assert_eq!(b.len(), n, "solve: b length mismatch");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
            }
            rhs.swap(col, piv);
        }
        // Eliminate below.
        let d = m[col * n + col];
        for r in (col + 1)..n {
            let factor = m[r * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= factor * m[col * n + c];
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut s = rhs[col];
        for c in (col + 1)..n {
            s -= m[col * n + c] * x[c];
        }
        x[col] = s / m[col * n + col];
    }
    Some(x)
}

/// Weighted least squares: minimises `Σ_i w_i (y_i − z_iᵀ β)²` over rows
/// `z_i` of the `rows × p` design matrix. Solves the normal equations
/// `(ZᵀWZ) β = ZᵀW y`. Returns `None` when the system is singular.
pub fn weighted_least_squares(z: &[Vec<f64>], y: &[f64], w: &[f64]) -> Option<Vec<f64>> {
    let rows = z.len();
    assert!(rows > 0, "wls: empty design");
    assert_eq!(y.len(), rows, "wls: y length mismatch");
    assert_eq!(w.len(), rows, "wls: w length mismatch");
    let p = z[0].len();
    let mut ata = vec![0.0f64; p * p];
    let mut atb = vec![0.0f64; p];
    for i in 0..rows {
        debug_assert_eq!(z[i].len(), p, "wls: ragged design");
        let wi = w[i];
        for a in 0..p {
            let za = z[i][a] * wi;
            atb[a] += za * y[i];
            for b in 0..p {
                ata[a * p + b] += za * z[i][b];
            }
        }
    }
    solve(&ata, &atb, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve(&a, &[3.0, -2.0], 2).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x - y = 1 → x = 2, y = 1.
        let a = vec![2.0, 1.0, 1.0, -1.0];
        let x = solve(&a, &[5.0, 1.0], 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot is zero; requires a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[7.0, 9.0], 2).unwrap();
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn wls_recovers_exact_linear_model() {
        // y = 3 z0 - 2 z1, arbitrary positive weights.
        let z = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y: Vec<f64> = z.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        let w = vec![0.5, 2.0, 1.0, 3.0];
        let beta = weighted_least_squares(&z, &y, &w).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn wls_weights_matter() {
        // Two inconsistent observations of a constant; the heavier wins.
        let z = vec![vec![1.0], vec![1.0]];
        let y = vec![0.0, 10.0];
        let beta = weighted_least_squares(&z, &y, &[1.0, 9.0]).unwrap();
        assert!((beta[0] - 9.0).abs() < 1e-9);
    }
}
