//! Gauss–Legendre quadrature on the unit interval.
//!
//! The TreeSHAP kernel in [`crate::treeshap`] evaluates, per leaf and
//! feature, the Shapley subset sum in its integral form
//! `∫₀¹ ∏_j (one_j·t + zero_j·(1−t)) dt` — a polynomial of degree at
//! most the unique path length, which an `m`-point Gauss–Legendre rule
//! integrates *exactly* whenever `2m − 1` covers that degree. Nodes and
//! weights are computed once per tree by Newton iteration on the
//! Legendre polynomial (no tables, no dependencies) to full `f64`
//! precision.

/// Nodes and weights of the `m`-point Gauss–Legendre rule mapped to
/// `[0, 1]`. Exact for polynomials of degree ≤ `2m − 1`; the weights
/// are positive and sum to 1.
///
/// ```
/// let (t, w) = icn_shap::gauss_legendre_01(4);
/// // ∫₀¹ t³ dt = 1/4, degree 3 ≤ 2·4 − 1.
/// let integral: f64 = t.iter().zip(&w).map(|(t, w)| w * t * t * t).sum();
/// assert!((integral - 0.25).abs() < 1e-15);
/// ```
pub fn gauss_legendre_01(m: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(m >= 1, "gauss_legendre_01: need at least one node");
    let mut t = vec![0.0; m];
    let mut w = vec![0.0; m];
    // Roots come in ± pairs on [-1, 1]; solve the positive half and
    // mirror.
    for i in 0..m.div_ceil(2) {
        // Tricomi's initial guess for the i-th root (descending order).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (m as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (p, d) = legendre_with_derivative(m, x);
            dp = d;
            let step = p / d;
            x -= step;
            if step.abs() < 1e-15 {
                let (_, d2) = legendre_with_derivative(m, x);
                dp = d2;
                break;
            }
        }
        let weight = 2.0 / ((1.0 - x * x) * dp * dp);
        // Map [-1, 1] → [0, 1]: t = (1 + x)/2, weight halves.
        t[i] = (1.0 - x) / 2.0;
        w[i] = weight / 2.0;
        t[m - 1 - i] = (1.0 + x) / 2.0;
        w[m - 1 - i] = weight / 2.0;
    }
    (t, w)
}

/// Legendre polynomial `P_m(x)` and its derivative via the three-term
/// recurrence.
fn legendre_with_derivative(m: usize, x: f64) -> (f64, f64) {
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 2..=m {
        let kf = k as f64;
        let next = ((2.0 * kf - 1.0) * x * p - (kf - 1.0) * p_prev) / kf;
        p_prev = p;
        p = next;
    }
    let d = m as f64 * (x * p - p_prev) / (x * x - 1.0);
    (p, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_positive_and_sum_to_one() {
        for m in 1..=24 {
            let (t, w) = gauss_legendre_01(m);
            assert_eq!(t.len(), m);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-13, "m={m}: weights sum {sum}");
            for (&ti, &wi) in t.iter().zip(&w) {
                assert!(wi > 0.0, "m={m}: non-positive weight");
                assert!((0.0..1.0).contains(&ti), "m={m}: node {ti} outside (0,1)");
            }
        }
    }

    #[test]
    fn nodes_are_sorted_and_symmetric() {
        for m in 2..=16 {
            let (t, w) = gauss_legendre_01(m);
            for i in 1..m {
                assert!(t[i] > t[i - 1], "m={m}: nodes not increasing");
            }
            for i in 0..m {
                assert!(
                    (t[i] + t[m - 1 - i] - 1.0).abs() < 1e-14,
                    "m={m}: asymmetric"
                );
                assert!(
                    (w[i] - w[m - 1 - i]).abs() < 1e-14,
                    "m={m}: asymmetric weight"
                );
            }
        }
    }

    #[test]
    fn integrates_monomials_exactly_up_to_degree() {
        // ∫₀¹ t^k dt = 1/(k+1), exact for k ≤ 2m − 1.
        for m in 1..=16 {
            let (t, w) = gauss_legendre_01(m);
            for k in 0..=(2 * m - 1) {
                let got: f64 = t.iter().zip(&w).map(|(t, w)| w * t.powi(k as i32)).sum();
                let want = 1.0 / (k as f64 + 1.0);
                assert!(
                    (got - want).abs() < 1e-13 * want.max(1.0),
                    "m={m} k={k}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn two_point_rule_matches_known_values() {
        let (t, w) = gauss_legendre_01(2);
        let s = 0.5 / 3.0f64.sqrt();
        assert!((t[0] - (0.5 - s)).abs() < 1e-15);
        assert!((t[1] - (0.5 + s)).abs() < 1e-15);
        assert!((w[0] - 0.5).abs() < 1e-15);
        assert!((w[1] - 0.5).abs() < 1e-15);
    }
}
