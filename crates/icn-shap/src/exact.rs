//! Exact Shapley values by subset enumeration — the ground truth.
//!
//! Equation (4) of the paper defines the Shapley value of feature `i` as a
//! weighted sum over all feature subsets of the model-output difference
//! with and without `i`. For a tree ensemble, "without a feature" is the
//! *path-dependent conditional expectation*: descend the tree, follow `x`
//! on present features, and average children by their training cover on
//! absent ones. This module evaluates the 2^M sum directly — exponential,
//! usable only for small M, and exactly the target TreeSHAP reproduces in
//! polynomial time. The unit tests of [`crate::treeshap`] validate against
//! it.

use icn_forest::DecisionTree;

/// Path-dependent conditional expectation `E[f(x) | x_S]` of a tree's
/// class-probability output, where `S = {i : present[i]}`.
pub fn tree_expectation(tree: &DecisionTree, x: &[f64], present: &[bool]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        tree.n_features,
        "tree_expectation: feature mismatch"
    );
    assert_eq!(
        present.len(),
        tree.n_features,
        "tree_expectation: mask mismatch"
    );
    fn rec(tree: &DecisionTree, x: &[f64], present: &[bool], idx: usize) -> Vec<f64> {
        let node = &tree.nodes[idx];
        if node.is_leaf() {
            return node.distribution.clone();
        }
        if present[node.feature] {
            let next = if x[node.feature] <= node.threshold {
                node.left
            } else {
                node.right
            };
            rec(tree, x, present, next)
        } else {
            let l = rec(tree, x, present, node.left);
            let r = rec(tree, x, present, node.right);
            let wl = tree.nodes[node.left].cover / node.cover;
            let wr = tree.nodes[node.right].cover / node.cover;
            l.iter().zip(&r).map(|(a, b)| wl * a + wr * b).collect()
        }
    }
    rec(tree, x, present, 0)
}

/// Exact Shapley values of a single tree's output for sample `x`:
/// `phi[feature][class]`. Also returns the base value `E[f]` (the
/// all-absent expectation) as the second element.
///
/// # Panics
/// If the tree has more than 20 features (2^M blow-up guard).
pub fn exact_tree_shap(tree: &DecisionTree, x: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let m = tree.n_features;
    assert!(
        m <= 20,
        "exact_tree_shap: too many features for enumeration"
    );
    let n_classes = tree.n_classes;
    let mut phi = vec![vec![0.0f64; n_classes]; m];

    // Precompute factorials.
    let fact: Vec<f64> = {
        let mut f = vec![1.0f64; m + 1];
        for i in 1..=m {
            f[i] = f[i - 1] * i as f64;
        }
        f
    };

    // Enumerate subsets S of features not containing i implicitly: iterate
    // all masks, and for each i ∉ S accumulate the marginal contribution.
    let mut present = vec![false; m];
    for mask in 0u32..(1u32 << m) {
        let s_size = mask.count_ones() as usize;
        for (i, p) in present.iter_mut().enumerate() {
            *p = mask & (1 << i) != 0;
        }
        if s_size == m {
            continue; // no i ∉ S to credit
        }
        let f_s = tree_expectation(tree, x, &present);
        let weight = fact[s_size] * fact[m - s_size - 1] / fact[m];
        for i in 0..m {
            if mask & (1 << i) != 0 {
                continue; // i ∈ S
            }
            present[i] = true;
            let f_si = tree_expectation(tree, x, &present);
            present[i] = false;
            for c in 0..n_classes {
                phi[i][c] += weight * (f_si[c] - f_s[c]);
            }
        }
    }

    let base = tree_expectation(tree, x, &vec![false; m]);
    (phi, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_forest::{DecisionTree, TrainSet, TreeConfig};
    use icn_stats::{Matrix, Rng};

    fn small_tree(seed: u64) -> (DecisionTree, TrainSet) {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            let a = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            let c = rng.uniform(0.0, 1.0);
            rows.push(vec![a, b, c]);
            labels.push(usize::from(a + 0.5 * b > 0.8));
        }
        let ts = TrainSet::new(Matrix::from_rows(&rows), labels);
        let all: Vec<usize> = (0..ts.len()).collect();
        let tree = DecisionTree::fit(&ts, &all, &TreeConfig::default(), &mut rng);
        (tree, ts)
    }

    #[test]
    fn expectation_all_present_is_prediction() {
        let (tree, ts) = small_tree(1);
        for i in 0..5 {
            let x = ts.x.row(i);
            let e = tree_expectation(&tree, x, &[true, true, true]);
            assert_eq!(e, tree.predict_proba(x).to_vec());
        }
    }

    #[test]
    fn expectation_none_present_is_root_average() {
        let (tree, ts) = small_tree(2);
        let x = ts.x.row(0);
        let e = tree_expectation(&tree, x, &[false, false, false]);
        // Root distribution equals the cover-weighted leaf average.
        let root = &tree.nodes[0].distribution;
        for (a, b) in e.iter().zip(root) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn shapley_additivity() {
        // Σ_i phi_i + base = f(x), per class (local accuracy).
        let (tree, ts) = small_tree(3);
        for i in 0..5 {
            let x = ts.x.row(i);
            let (phi, base) = exact_tree_shap(&tree, x);
            let pred = tree.predict_proba(x);
            for c in 0..tree.n_classes {
                let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
                assert!(
                    (total - pred[c]).abs() < 1e-9,
                    "sample {i} class {c}: {total} vs {}",
                    pred[c]
                );
            }
        }
    }

    #[test]
    fn irrelevant_feature_gets_zero() {
        // Feature 2 never splits (labels depend only on features 0, 1), so
        // its Shapley value must be 0 by the missingness property.
        let (tree, ts) = small_tree(4);
        let uses_f2 = tree.nodes.iter().any(|n| !n.is_leaf() && n.feature == 2);
        if !uses_f2 {
            let x = ts.x.row(0);
            let (phi, _) = exact_tree_shap(&tree, x);
            for c in 0..tree.n_classes {
                assert!(phi[2][c].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symmetric_stump_splits_credit_equally() {
        // A stump on feature 0: only feature 0 can carry credit.
        let ts = TrainSet::new(
            Matrix::from_rows(&[
                vec![0.0, 9.0],
                vec![0.0, -9.0],
                vec![1.0, 9.0],
                vec![1.0, -9.0],
            ]),
            vec![0, 0, 1, 1],
        );
        let mut rng = Rng::seed_from(5);
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let all: Vec<usize> = (0..4).collect();
        let tree = DecisionTree::fit(&ts, &all, &cfg, &mut rng);
        let (phi, _) = exact_tree_shap(&tree, &[0.0, 9.0]);
        assert!(phi[1][0].abs() < 1e-12);
        assert!(phi[0][0].abs() > 0.1);
    }
}
