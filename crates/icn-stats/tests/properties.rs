//! Property-based tests for the numeric substrate.

use icn_stats::distance::{euclidean, sq_euclidean, Metric};
use icn_stats::histogram::Histogram;
use icn_stats::matrix::Matrix;
use icn_stats::normalize;
use icn_stats::rank;
use icn_stats::rng::Rng;
use icn_stats::summary;
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #[test]
    fn quantile_is_monotone(xs in finite_vec(1..60), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(summary::quantile(&xs, lo) <= summary::quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn quantile_within_range(xs in finite_vec(1..60), q in 0.0f64..=1.0) {
        let v = summary::quantile(&xs, q);
        prop_assert!(v >= summary::min(&xs) - 1e-9);
        prop_assert!(v <= summary::max(&xs) + 1e-9);
    }

    #[test]
    fn variance_nonnegative(xs in finite_vec(1..60)) {
        prop_assert!(summary::variance(&xs) >= 0.0);
    }

    #[test]
    fn mean_shift_equivariance(xs in finite_vec(1..40), c in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let d = summary::mean(&shifted) - summary::mean(&xs);
        prop_assert!((d - c).abs() < 1e-6);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in finite_vec(3..4), b in finite_vec(3..4), c in finite_vec(3..4)
    ) {
        let ab = euclidean(&a, &b);
        let bc = euclidean(&b, &c);
        let ac = euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn metric_symmetry_and_identity(a in finite_vec(4..5), b in finite_vec(4..5)) {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::SqEuclidean] {
            prop_assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-9);
            prop_assert!(m.distance(&a, &a).abs() < 1e-9);
            prop_assert!(m.distance(&a, &b) >= 0.0);
        }
    }

    #[test]
    fn sq_euclidean_is_square(a in finite_vec(5..6), b in finite_vec(5..6)) {
        let e = euclidean(&a, &b);
        prop_assert!((sq_euclidean(&a, &b) - e * e).abs() < 1e-3_f64.max(e * e * 1e-12));
    }

    #[test]
    fn histogram_conserves_mass(xs in finite_vec(0..200), bins in 1usize..30) {
        let h = Histogram::of(&xs, -10.0, 10.0, bins);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn min_max_output_in_unit_interval(xs in finite_vec(1..50)) {
        for v in normalize::min_max(&xs) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn argsort_is_permutation_and_sorted(xs in finite_vec(0..50)) {
        let idx = rank::argsort(&xs);
        let mut seen = idx.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>());
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] <= xs[w[1]]);
        }
    }

    #[test]
    fn top_k_contains_max(xs in finite_vec(1..50), k in 1usize..10) {
        let t = rank::top_k(&xs, k);
        prop_assert_eq!(t[0], rank::argmax(&xs));
    }

    #[test]
    fn rng_uniform_bounds(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.001f64..100.0) {
        let mut r = Rng::seed_from(seed);
        let hi = lo + width;
        for _ in 0..32 {
            let x = r.uniform(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(r.below(n) < n);
        }
    }

    #[test]
    fn matrix_row_col_sums_total(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut r = Rng::seed_from(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| r.uniform(0.0, 10.0)).collect();
        let m = Matrix::from_vec(rows, cols, data);
        let t = m.total();
        let rs: f64 = m.row_sums().iter().sum();
        let cs: f64 = m.col_sums().iter().sum();
        prop_assert!((t - rs).abs() < 1e-9);
        prop_assert!((t - cs).abs() < 1e-9);
    }

    #[test]
    fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut r = Rng::seed_from(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| r.gaussian()).collect();
        let m = Matrix::from_vec(rows, cols, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn dirichlet_simplex(seed in any::<u64>(), n in 1usize..30, shape in 1u32..6) {
        let mut r = Rng::seed_from(seed);
        let v = r.dirichlet_symmetric(n, shape);
        let s: f64 = v.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
