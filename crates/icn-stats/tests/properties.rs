//! Property-based tests for the numeric substrate, driven by the
//! deterministic [`icn_stats::check`] harness.

use icn_stats::check::{cases, len_in, uniform_vec};
use icn_stats::distance::{euclidean, sq_euclidean, Metric};
use icn_stats::histogram::Histogram;
use icn_stats::matrix::Matrix;
use icn_stats::normalize;
use icn_stats::rank;
use icn_stats::rng::Rng;
use icn_stats::summary;

fn finite_vec(rng: &mut Rng, lo: usize, hi: usize) -> Vec<f64> {
    let len = len_in(rng, lo, hi);
    uniform_vec(rng, len, -1e6, 1e6)
}

#[test]
fn quantile_is_monotone() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 60);
        let (q1, q2) = (rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0));
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(
            summary::quantile(&xs, lo) <= summary::quantile(&xs, hi) + 1e-9,
            "case {case}"
        );
    });
}

#[test]
fn quantile_within_range() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 60);
        let v = summary::quantile(&xs, rng.uniform(0.0, 1.0));
        assert!(v >= summary::min(&xs) - 1e-9, "case {case}");
        assert!(v <= summary::max(&xs) + 1e-9, "case {case}");
    });
}

#[test]
fn variance_nonnegative() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 60);
        assert!(summary::variance(&xs) >= 0.0, "case {case}");
    });
}

#[test]
fn mean_shift_equivariance() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 40);
        let c = rng.uniform(-1e3, 1e3);
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let d = summary::mean(&shifted) - summary::mean(&xs);
        assert!((d - c).abs() < 1e-6, "case {case}: {d} vs {c}");
    });
}

#[test]
fn euclidean_triangle_inequality() {
    cases(64, |case, rng| {
        let a = uniform_vec(rng, 3, -1e6, 1e6);
        let b = uniform_vec(rng, 3, -1e6, 1e6);
        let c = uniform_vec(rng, 3, -1e6, 1e6);
        let ab = euclidean(&a, &b);
        let bc = euclidean(&b, &c);
        let ac = euclidean(&a, &c);
        assert!(ac <= ab + bc + 1e-6, "case {case}");
    });
}

#[test]
fn metric_symmetry_and_identity() {
    cases(64, |case, rng| {
        let a = uniform_vec(rng, 4, -1e6, 1e6);
        let b = uniform_vec(rng, 4, -1e6, 1e6);
        for m in [
            Metric::Euclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::SqEuclidean,
        ] {
            assert!(
                (m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-9,
                "case {case}: {m:?}"
            );
            assert!(m.distance(&a, &a).abs() < 1e-9, "case {case}: {m:?}");
            assert!(m.distance(&a, &b) >= 0.0, "case {case}: {m:?}");
        }
    });
}

#[test]
fn sq_euclidean_is_square() {
    cases(64, |case, rng| {
        let a = uniform_vec(rng, 5, -1e6, 1e6);
        let b = uniform_vec(rng, 5, -1e6, 1e6);
        let e = euclidean(&a, &b);
        assert!(
            (sq_euclidean(&a, &b) - e * e).abs() < 1e-3_f64.max(e * e * 1e-12),
            "case {case}"
        );
    });
}

#[test]
fn histogram_conserves_mass() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 200);
        let bins = len_in(rng, 1, 30);
        let h = Histogram::of(&xs, -10.0, 10.0, bins);
        assert_eq!(h.total(), xs.len() as u64, "case {case}");
    });
}

#[test]
fn min_max_output_in_unit_interval() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 50);
        for v in normalize::min_max(&xs) {
            assert!((0.0..=1.0).contains(&v), "case {case}: {v}");
        }
    });
}

#[test]
fn argsort_is_permutation_and_sorted() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 50);
        let idx = rank::argsort(&xs);
        let mut seen = idx.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..xs.len()).collect::<Vec<_>>(), "case {case}");
        for w in idx.windows(2) {
            assert!(xs[w[0]] <= xs[w[1]], "case {case}");
        }
    });
}

#[test]
fn top_k_contains_max() {
    cases(64, |case, rng| {
        let xs = finite_vec(rng, 1, 50);
        let k = len_in(rng, 1, 10);
        let t = rank::top_k(&xs, k);
        assert_eq!(t[0], rank::argmax(&xs), "case {case}");
    });
}

#[test]
fn rng_uniform_bounds() {
    cases(64, |case, rng| {
        let lo = rng.uniform(-100.0, 0.0);
        let hi = lo + rng.uniform(0.001, 100.0);
        let mut r = Rng::seed_from(rng.next_u64());
        for _ in 0..32 {
            let x = r.uniform(lo, hi);
            assert!(x >= lo && x < hi, "case {case}: {x} not in [{lo},{hi})");
        }
    });
}

#[test]
fn rng_below_in_range() {
    cases(64, |case, rng| {
        let n = 1 + rng.below(1_000_000);
        let mut r = Rng::seed_from(rng.next_u64());
        for _ in 0..32 {
            assert!(r.below(n) < n, "case {case}");
        }
    });
}

#[test]
fn matrix_row_col_sums_total() {
    cases(64, |case, rng| {
        let rows = len_in(rng, 1, 8);
        let cols = len_in(rng, 1, 8);
        let data = uniform_vec(rng, rows * cols, 0.0, 10.0);
        let m = Matrix::from_vec(rows, cols, data);
        let t = m.total();
        let rs: f64 = m.row_sums().iter().sum();
        let cs: f64 = m.col_sums().iter().sum();
        assert!((t - rs).abs() < 1e-9, "case {case}");
        assert!((t - cs).abs() < 1e-9, "case {case}");
    });
}

#[test]
fn transpose_involution() {
    cases(64, |case, rng| {
        let rows = len_in(rng, 1, 6);
        let cols = len_in(rng, 1, 6);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gaussian()).collect();
        let m = Matrix::from_vec(rows, cols, data);
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    });
}

#[test]
fn dirichlet_simplex() {
    cases(64, |case, rng| {
        let n = len_in(rng, 1, 30);
        let shape = 1 + rng.below(5) as u32;
        let v = rng.dirichlet_symmetric(n, shape);
        let s: f64 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "case {case}: sum {s}");
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)), "case {case}");
    });
}
