//! Normalisation transforms.
//!
//! Section 4.1 of the paper argues that normalising the traffic matrix by
//! the global maximum "squeezes" most services near zero (the spike in
//! Figure 1) and motivates RCA/RSCA instead. These helpers implement the
//! normalisations that the figure harness and the transform-ablation bench
//! (B1) compare against.

use crate::matrix::Matrix;

/// Divides every entry by the global maximum of the matrix — the
/// "normalized traffic" of Figure 1. A zero matrix is returned unchanged.
pub fn by_global_max(m: &Matrix) -> Matrix {
    let mx = m.max();
    if mx <= 0.0 {
        return m.clone();
    }
    m.map(|v| v / mx)
}

/// Scales each row to sum to one (service *shares* per antenna). Rows that
/// sum to zero are left as zeros.
pub fn row_stochastic(m: &Matrix) -> Matrix {
    let sums = m.row_sums();
    let mut out = m.clone();
    for r in 0..out.rows() {
        let s = sums[r];
        if s > 0.0 {
            for v in out.row_mut(r) {
                *v /= s;
            }
        }
    }
    out
}

/// Min-max scales a slice into `[0, 1]`. Constant slices map to all zeros.
pub fn min_max(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|&x| (x - lo) / (hi - lo)).collect()
}

/// Z-scores each column of the matrix (zero mean, unit variance per
/// feature). Constant columns become all zeros. Used by the k-means baseline
/// to avoid scale dominance.
pub fn z_score_columns(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let rows = m.rows();
    if rows == 0 {
        return out;
    }
    for c in 0..m.cols() {
        let col = m.col(c);
        let mean = col.iter().sum::<f64>() / rows as f64;
        let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / rows as f64;
        let sd = var.sqrt();
        for r in 0..rows {
            let v = if sd > 0.0 {
                (m.get(r, c) - mean) / sd
            } else {
                0.0
            };
            out.set(r, c, v);
        }
    }
    out
}

/// Normalises a slice by its own maximum (used for the per-cluster temporal
/// heatmaps of Figures 10–11, which plot *normalised* median traffic).
/// All-zero input stays all-zero.
pub fn by_max(xs: &[f64]) -> Vec<f64> {
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(hi > 0.0) {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|&x| x / hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_max_scales_to_unit() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let n = by_global_max(&m);
        assert_eq!(n.get(1, 1), 1.0);
        assert_eq!(n.get(0, 0), 0.25);
    }

    #[test]
    fn global_max_zero_matrix_unchanged() {
        let m = Matrix::zeros(2, 2);
        assert_eq!(by_global_max(&m), m);
    }

    #[test]
    fn row_stochastic_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
        let n = row_stochastic(&m);
        let s: f64 = n.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Zero row untouched.
        assert_eq!(n.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_range_and_constant() {
        let v = min_max(&[2.0, 4.0, 6.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        assert_eq!(min_max(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert!(min_max(&[]).is_empty());
    }

    #[test]
    fn z_score_columns_moments() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 5.0, 2.0, 5.0, 3.0, 5.0, 4.0, 5.0]);
        let z = z_score_columns(&m);
        let col0 = z.col(0);
        let mean: f64 = col0.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = col0.iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-12);
        // Constant column becomes zeros.
        assert_eq!(z.col(1), vec![0.0; 4]);
    }

    #[test]
    fn by_max_basics() {
        assert_eq!(by_max(&[0.0, 2.0, 4.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(by_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
