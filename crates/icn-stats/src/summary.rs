//! Scalar summaries over slices: mean, variance, median, quantiles.
//!
//! The temporal analysis of the paper (Section 6) reports the *median*
//! traffic per hour across the antennas of a cluster, and the clustering
//! quality indices need means and variances; these are the shared
//! implementations. All functions treat an empty slice as an error (they
//! panic with a clear message) rather than silently returning NaN — upstream
//! code guards against empty clusters explicitly.

/// Arithmetic mean. Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Panics on an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value. Panics on an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "min of empty slice");
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Panics on an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "max of empty slice");
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Median (average of the two central order statistics for even length).
/// Does not modify the input. Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile by linear interpolation between order statistics (the same
/// convention as NumPy's default, `q` in `[0, 1]`). Panics on an empty slice
/// or an out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile: q out of [0,1]");
    let mut v = xs.to_vec();
    // Total order: NaNs would poison sorting; forbid them loudly.
    assert!(v.iter().all(|x| !x.is_nan()), "quantile: NaN in input");
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median that is allowed to reorder its scratch input (no allocation).
pub fn median_inplace(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("median_inplace: NaN in input"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Pearson correlation coefficient of two equal-length slices.
/// Returns 0.0 when either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    assert!(!xs.is_empty(), "pearson of empty slices");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Compact five-number-style summary used in reports and EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes the summary of a non-empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            min: min(xs),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: max(xs),
            mean: mean(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "mean of empty")]
    fn mean_empty_panics() {
        mean(&[]);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn median_inplace_agrees() {
        let xs = [9.0, -1.0, 4.0, 4.0, 0.0];
        let mut scratch = xs;
        assert_eq!(median_inplace(&mut scratch), median(&xs));
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        // pos = 0.25 * 3 = 0.75 -> between 10 and 20 at 75%.
        assert!((quantile(&xs, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "q out of")]
    fn quantile_bad_q_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn quantile_nan_panics() {
        quantile(&[1.0, f64::NAN], 0.5);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -2.0, 7.0];
        assert_eq!(min(&xs), -2.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let ny: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &ny) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn summary_matches_parts() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }
}
