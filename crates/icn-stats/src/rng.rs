//! Deterministic pseudo-random number generation and sampling.
//!
//! The synthetic measurement substrate must be bit-for-bit reproducible for a
//! fixed seed, independent of external crate versions, so we implement two
//! small, well-known generators here:
//!
//! * **SplitMix64** — used to expand a single `u64` seed into the 256-bit
//!   state of the main generator (and handy for cheap stateless hashing).
//! * **Xoshiro256++** — the main generator; fast, passes BigCrush, and has a
//!   `jump()` function allowing 2^128 non-overlapping substreams which we use
//!   to give every antenna its own independent stream.
//!
//! On top of the raw generator sit the distributions the traffic synthesiser
//! needs: uniform, Gaussian (Box–Muller, cached), log-normal, exponential,
//! Poisson (Knuth for small λ, PTRD-style normal approximation for large λ),
//! categorical, shuffling and sampling without replacement.

/// SplitMix64 step: expands a seed into a sequence of well-mixed `u64`s.
///
/// This is the standard seeding routine recommended by the Xoshiro authors.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless 64-bit mix of two values; used to derive per-entity seeds
/// (e.g. seed ⊕ antenna id) without correlations between nearby ids.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut s);
    splitmix64(&mut s)
}

/// Xoshiro256++ deterministic pseudo-random generator with sampling helpers.
///
/// ```
/// use icn_stats::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator for a sub-entity (antenna,
    /// tree, ...). Streams derived with distinct `tag`s are statistically
    /// independent of the parent and of each other.
    pub fn fork(&self, tag: u64) -> Self {
        Rng::seed_from(mix64(self.s[0] ^ self.s[2], tag))
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform: lo > hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    /// `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: n must be > 0");
        // Unbiased bounded generation (widening multiply with rejection).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform (polar-free
    /// variant, second value cached).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        debug_assert!(sd >= 0.0, "normal: negative sd");
        mean + sd * self.gaussian()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`. `mu`/`sigma` are the
    /// parameters of the underlying normal (natural-log scale).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential deviate with rate `lambda` (mean `1/lambda`).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "exponential: rate must be positive");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Poisson deviate with mean `lambda`.
    ///
    /// Uses Knuth's product method for small λ and a clamped normal
    /// approximation for λ ≥ 30 (adequate for traffic burst counts).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0, "poisson: negative mean");
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }

    /// Samples an index with probability proportional to `weights[i]`.
    /// Weights must be non-negative with a positive sum.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "categorical: weights must sum to a positive finite value"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "categorical: negative weight");
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        // Partial Fisher-Yates over an index vector; O(n) allocation is fine
        // at our scales (n ≤ tens of thousands).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draws a random share vector of length `n` that sums to one, by
    /// normalising independent Gamma(shape, 1)-ish deviates obtained from
    /// products of exponentials (integer shape) — a Dirichlet(α=shape)
    /// sample, used for mixing noise into service share vectors.
    pub fn dirichlet_symmetric(&mut self, n: usize, shape: u32) -> Vec<f64> {
        assert!(n > 0 && shape > 0, "dirichlet: empty or zero shape");
        let mut v: Vec<f64> = (0..n)
            .map(|_| {
                // Gamma(k, 1) with integer k = sum of k exponentials.
                (0..shape).map(|_| self.exponential(1.0)).sum::<f64>()
            })
            .collect();
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 0 from the public-domain reference code.
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Deterministic across runs:
        let mut s2 = 0u64;
        assert_eq!(a, splitmix64(&mut s2));
        assert_eq!(b, splitmix64(&mut s2));
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let root = Rng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c1b = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_unbiased_small_range() {
        let mut r = Rng::seed_from(5);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.2).abs() < 0.01, "bucket freq {f} too far from 0.2");
        }
    }

    #[test]
    #[should_panic(expected = "below: n must be > 0")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed_from(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = Rng::seed_from(3);
        for _ in 0..1_000 {
            assert!(r.lognormal(0.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::seed_from(17);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = Rng::seed_from(23);
        let n = 50_000;
        let mean = (0..n).map(|_| r.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut r = Rng::seed_from(29);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(120.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 120.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = Rng::seed_from(1);
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = Rng::seed_from(31);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[r.categorical(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.01, "f0 {f0}");
    }

    #[test]
    #[should_panic(expected = "categorical")]
    fn categorical_zero_weights_panics() {
        Rng::seed_from(0).categorical(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(37);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from(41);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut r = Rng::seed_from(43);
        let mut s = r.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = Rng::seed_from(47);
        let v = r.dirichlet_symmetric(20, 3);
        assert_eq!(v.len(), 20);
        let s: f64 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn mix64_spreads_nearby_inputs() {
        let a = mix64(1, 1);
        let b = mix64(1, 2);
        let c = mix64(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
