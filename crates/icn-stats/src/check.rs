//! A tiny deterministic property-test harness.
//!
//! The workspace's property tests were written against `proptest`, which
//! the offline build environment cannot fetch. This module keeps the
//! property-style discipline — each invariant exercised over many random
//! inputs — with the repo's own deterministic [`Rng`]: every case gets an
//! independent seeded stream, so failures reproduce exactly and CI is
//! stable across platforms.
//!
//! ```
//! use icn_stats::check::cases;
//! cases(32, |case, rng| {
//!     let x = rng.uniform(0.0, 10.0);
//!     assert!(x >= 0.0, "case {case}: {x}");
//! });
//! ```

use crate::rng::Rng;

/// Runs `body` for `n` independent cases, each with a fresh deterministic
/// RNG derived from the case index. The case index is passed through so
/// assertion messages can name the failing case.
pub fn cases(n: u64, mut body: impl FnMut(u64, &mut Rng)) {
    for case in 0..n {
        // Golden-ratio stride decorrelates neighbouring case seeds.
        let mut rng = Rng::seed_from(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case + 1));
        body(case, &mut rng);
    }
}

/// A random length inside `lo..hi` (exclusive upper bound).
pub fn len_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    assert!(lo < hi, "len_in: empty range");
    lo + rng.index(hi - lo)
}

/// A vector of `len` uniform values in `[lo, hi)`.
pub fn uniform_vec(rng: &mut Rng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        cases(5, |_, rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases(5, |_, rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // And distinct across cases.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn len_in_respects_bounds() {
        cases(64, |_, rng| {
            let l = len_in(rng, 3, 10);
            assert!((3..10).contains(&l));
        });
    }

    #[test]
    fn uniform_vec_in_range() {
        cases(16, |_, rng| {
            let v = uniform_vec(rng, 20, -2.0, 3.0);
            assert_eq!(v.len(), 20);
            assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
        });
    }
}
