//! A tiny deterministic property-test harness.
//!
//! The workspace's property tests were written against `proptest`, which
//! the offline build environment cannot fetch. This module keeps the
//! property-style discipline — each invariant exercised over many random
//! inputs — with the repo's own deterministic [`Rng`]: every case gets an
//! independent seeded stream, so failures reproduce exactly and CI is
//! stable across platforms.
//!
//! ```
//! use icn_stats::check::cases;
//! cases(32, |case, rng| {
//!     let x = rng.uniform(0.0, 10.0);
//!     assert!(x >= 0.0, "case {case}: {x}");
//! });
//! ```
//!
//! Beyond [`cases`], the module offers a shrinking harness in the spirit of
//! proptest/QuickCheck: [`cases_persisted`] generates inputs through a
//! [`Shrink`] type, minimises any counterexample by halve-and-retry, and
//! persists the failing seed to `target/testkit-regressions/<name>.seeds`
//! so the exact counterexample replays *first* on the next run.

use crate::matrix::Matrix;
use crate::rng::Rng;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

thread_local! {
    /// Per-case log of what the generators produced, printed on failure.
    static INPUT_LOG: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Records a line in the current case's input log. The harness prints the
/// log when a case panics, so failures reproduce without re-running the
/// whole suite; generator helpers ([`len_in`], [`uniform_vec`],
/// [`uniform_matrix`]) call this automatically and test bodies may add
/// their own entries for bespoke inputs.
pub fn record(entry: impl Into<String>) {
    INPUT_LOG.with(|log| log.borrow_mut().push(entry.into()));
}

/// The deterministic seed for case `case` (golden-ratio stride decorrelates
/// neighbouring case seeds). Exposed so a failure printed by [`cases`] can
/// be replayed in isolation with `Rng::seed_from(seed)`.
pub fn case_seed(case: u64) -> u64 {
    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case + 1)
}

/// Runs `body` for `n` independent cases, each with a fresh deterministic
/// RNG derived from the case index. The case index is passed through so
/// assertion messages can name the failing case. If a case panics, the
/// harness prints the case index, its seed, and a summary of every input
/// the generator helpers produced, then re-raises the panic.
pub fn cases(n: u64, mut body: impl FnMut(u64, &mut Rng)) {
    for case in 0..n {
        let seed = case_seed(case);
        let mut rng = Rng::seed_from(seed);
        INPUT_LOG.with(|log| log.borrow_mut().clear());
        let outcome = catch_unwind(AssertUnwindSafe(|| body(case, &mut rng)));
        if let Err(payload) = outcome {
            eprintln!("icn_stats::check: case {case} of {n} failed (seed {seed:#018x})");
            eprintln!("  replay: icn_stats::Rng::seed_from({seed:#x})");
            INPUT_LOG.with(|log| {
                let log = log.borrow();
                if log.is_empty() {
                    eprintln!("  inputs: (none recorded)");
                } else {
                    eprintln!("  inputs:");
                    for line in log.iter() {
                        eprintln!("    {line}");
                    }
                }
            });
            resume_unwind(payload);
        }
    }
}

/// A random length inside `lo..hi` (exclusive upper bound).
pub fn len_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    assert!(lo < hi, "len_in: empty range");
    let len = lo + rng.index(hi - lo);
    record(format!("len_in({lo}..{hi}) -> {len}"));
    len
}

/// A vector of `len` uniform values in `[lo, hi)`.
pub fn uniform_vec(rng: &mut Rng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let v: Vec<f64> = (0..len).map(|_| rng.uniform(lo, hi)).collect();
    record(format!("uniform_vec(len={len}, [{lo}, {hi})) -> {v:?}"));
    v
}

/// A `rows x cols` matrix of uniform values in `[lo, hi)`.
pub fn uniform_matrix(rng: &mut Rng, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
    record(format!("uniform_matrix({rows}x{cols}, [{lo}, {hi}))"));
    Matrix::from_vec(rows, cols, data)
}

// ---------------------------------------------------------------------------
// Shrinking + regression persistence
// ---------------------------------------------------------------------------

/// An input type the shrinking harness can minimise. `shrinks` returns
/// strictly-smaller candidates (the harness tries them in order and recurses
/// into the first that still fails); `summary` is the human-readable form
/// printed in failure reports.
pub trait Shrink: Clone {
    /// Candidate smaller inputs, largest reduction first.
    fn shrinks(&self) -> Vec<Self>;
    /// One-line description used in failure reports.
    fn summary(&self) -> String;
}

impl Shrink for Vec<f64> {
    fn shrinks(&self) -> Vec<Self> {
        let n = self.len();
        if n <= 1 {
            return Vec::new();
        }
        // Halve-and-retry: drop the back half, drop the front half, then
        // single-element removals once the vector is already small.
        let mut out = vec![self[..n / 2].to_vec(), self[n - n / 2..].to_vec()];
        if n <= 8 {
            for i in 0..n {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
        }
        out
    }

    fn summary(&self) -> String {
        format!("Vec<f64> len={} {:?}", self.len(), self)
    }
}

impl Shrink for Matrix {
    fn shrinks(&self) -> Vec<Self> {
        let (r, c) = self.shape();
        let mut out = Vec::new();
        // Halve rows (keep front / back half), then halve columns.
        if r > 1 {
            out.push(self.select_rows(&(0..r / 2).collect::<Vec<_>>()));
            out.push(self.select_rows(&(r - r / 2..r).collect::<Vec<_>>()));
        }
        if c > 1 {
            for keep in [0..c / 2, c - c / 2..c] {
                let cols: Vec<usize> = keep.collect();
                let mut m = Matrix::zeros(r, cols.len());
                for i in 0..r {
                    for (jj, &j) in cols.iter().enumerate() {
                        m.set(i, jj, self.get(i, j));
                    }
                }
                out.push(m);
            }
        }
        out
    }

    fn summary(&self) -> String {
        let (r, c) = self.shape();
        format!("Matrix {r}x{c} {:?}", self.as_slice())
    }
}

impl<A: Shrink, B: Shrink> Shrink for (A, B) {
    fn shrinks(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrinks()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrinks().into_iter().map(|b| (self.0.clone(), b)));
        out
    }

    fn summary(&self) -> String {
        format!("({}, {})", self.0.summary(), self.1.summary())
    }
}

/// Where failing seeds are persisted. Honors `ICN_TESTKIT_REGRESSIONS`
/// (used by the harness's own tests); otherwise walks up from the current
/// directory to the workspace root (identified by `Cargo.lock`) and uses
/// `target/testkit-regressions/` there, so every crate in the workspace
/// shares one corpus.
pub fn regression_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("ICN_TESTKIT_REGRESSIONS") {
        return std::path::PathBuf::from(dir);
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").is_file() {
            return cur.join("target").join("testkit-regressions");
        }
        if !cur.pop() {
            return std::path::PathBuf::from("target").join("testkit-regressions");
        }
    }
}

fn seeds_file(name: &str) -> std::path::PathBuf {
    regression_dir().join(format!("{name}.seeds"))
}

fn load_seeds(name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(seeds_file(name)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            l.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| l.parse().ok())
        })
        .collect()
}

fn persist_seed(name: &str, seed: u64) {
    let mut seeds = load_seeds(name);
    if seeds.contains(&seed) {
        return;
    }
    seeds.push(seed);
    let dir = regression_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // read-only filesystem: persistence is best-effort
    }
    let body: String = seeds.iter().map(|s| format!("{s:#018x}\n")).collect();
    let _ = std::fs::write(seeds_file(name), body);
}

/// `true` when the property holds on `input` — a returned `false` and a
/// panic both count as failures, so plain `assert!` bodies shrink too.
fn holds<T>(prop: &impl Fn(&T) -> bool, input: &T) -> bool {
    catch_unwind(AssertUnwindSafe(|| prop(input))).unwrap_or(false)
}

/// Greedy halve-and-retry minimisation: repeatedly replaces the
/// counterexample with its first still-failing shrink until none fails or
/// the iteration budget runs out. Returns the minimal input and the number
/// of successful shrink steps.
pub fn shrink_to_minimal<T: Shrink>(input: T, prop: &impl Fn(&T) -> bool) -> (T, usize) {
    let mut current = input;
    let mut steps = 0usize;
    'outer: for _ in 0..64 {
        for candidate in current.shrinks() {
            if !holds(prop, &candidate) {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Property check with generation, shrinking, and failure persistence.
///
/// Runs `n` fresh cases (plus any previously-persisted counterexamples for
/// `name`, which replay *first*): each case derives a deterministic seed,
/// builds an input with `gen`, and requires `prop` to return `true` without
/// panicking. On failure the input is minimised by halve-and-retry
/// ([`Shrink::shrinks`]), the seed is appended to
/// `target/testkit-regressions/<name>.seeds`, and the harness panics with
/// the seed plus the original and shrunken input summaries.
pub fn cases_persisted<T, G, P>(name: &str, n: u64, mut gen: G, prop: P)
where
    T: Shrink,
    G: FnMut(&mut Rng) -> T,
    P: Fn(&T) -> bool,
{
    let fail = |seed: u64, input: T, replayed: bool| {
        let original = input.summary();
        let (minimal, steps) = shrink_to_minimal(input, &prop);
        persist_seed(name, seed);
        let origin = if replayed {
            "persisted regression"
        } else {
            "fresh case"
        };
        panic!(
            "property '{name}' failed ({origin}, seed {seed:#018x})\n  \
             original: {original}\n  \
             shrunk ({steps} steps): {}\n  \
             seed persisted to {}",
            minimal.summary(),
            seeds_file(name).display()
        );
    };
    for seed in load_seeds(name) {
        let input = gen(&mut Rng::seed_from(seed));
        if !holds(&prop, &input) {
            fail(seed, input, true);
        }
    }
    for case in 0..n {
        let seed = case_seed(case);
        let input = gen(&mut Rng::seed_from(seed));
        if !holds(&prop, &input) {
            fail(seed, input, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        cases(5, |_, rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases(5, |_, rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        // And distinct across cases.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn len_in_respects_bounds() {
        cases(64, |_, rng| {
            let l = len_in(rng, 3, 10);
            assert!((3..10).contains(&l));
        });
    }

    #[test]
    fn uniform_vec_in_range() {
        cases(16, |_, rng| {
            let v = uniform_vec(rng, 20, -2.0, 3.0);
            assert_eq!(v.len(), 20);
            assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
        });
    }

    #[test]
    fn case_seed_matches_cases_stream() {
        // The seed printed on failure must regenerate the exact stream the
        // failing case saw.
        cases(4, |case, rng| {
            let mut replay = Rng::seed_from(case_seed(case));
            assert_eq!(rng.next_u64(), replay.next_u64());
        });
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            cases(8, |case, rng| {
                let v = uniform_vec(rng, 4, 0.0, 1.0);
                assert!(case < 3, "boom {v:?}");
            });
        }));
        assert!(caught.is_err(), "panic must propagate out of cases()");
    }

    #[test]
    fn vec_shrinking_finds_small_counterexample() {
        // Property: fails whenever the vector has >= 3 elements. The
        // minimal counterexample is any 3-element vector.
        let prop = |v: &Vec<f64>| v.len() < 3;
        let input: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let (minimal, steps) = shrink_to_minimal(input, &prop);
        assert_eq!(minimal.len(), 3, "minimal: {:?}", minimal);
        assert!(steps > 0);
    }

    #[test]
    fn matrix_shrinking_reduces_both_dimensions() {
        // Fails whenever the matrix has >= 2 rows and >= 2 cols.
        let prop = |m: &Matrix| m.rows() < 2 || m.cols() < 2;
        let input = Matrix::from_vec(8, 8, (0..64).map(|i| i as f64).collect());
        let (minimal, _) = shrink_to_minimal(input, &prop);
        assert_eq!(minimal.shape(), (2, 2), "minimal: {:?}", minimal.shape());
    }

    #[test]
    fn pair_shrinking_reduces_both_components() {
        let prop = |(a, b): &(Vec<f64>, Vec<f64>)| a.len() < 2 || b.len() < 2;
        let input: (Vec<f64>, Vec<f64>) = (vec![0.0; 32], vec![1.0; 32]);
        let (minimal, _) = shrink_to_minimal(input, &prop);
        assert_eq!((minimal.0.len(), minimal.1.len()), (2, 2));
    }

    #[test]
    fn persisted_counterexample_replays_first() {
        // Point persistence at a scratch dir so this test is hermetic.
        let dir = std::env::temp_dir().join(format!("icn-testkit-{}", std::process::id()));
        std::env::set_var("ICN_TESTKIT_REGRESSIONS", &dir);
        let _ = std::fs::remove_dir_all(&dir);
        let name = "replay-first-demo";

        // First run: property fails on long vectors; a seed gets persisted.
        let first = catch_unwind(AssertUnwindSafe(|| {
            cases_persisted(
                name,
                16,
                |rng| {
                    let len = len_in(rng, 1, 12);
                    uniform_vec(rng, len, 0.0, 1.0)
                },
                |v: &Vec<f64>| v.len() < 2,
            );
        }));
        assert!(first.is_err(), "property should have failed");
        let seeds = load_seeds(name);
        assert_eq!(seeds.len(), 1, "one seed persisted: {seeds:?}");

        // Second run with a property that only fails on the persisted
        // seed's input: replay happens before any fresh case, so the order
        // of failure messages names the persisted regression.
        let persisted_seed = seeds[0];
        let second = catch_unwind(AssertUnwindSafe(|| {
            cases_persisted(
                name,
                0, // no fresh cases: only the replayed regression runs
                |rng| {
                    let len = len_in(rng, 1, 12);
                    uniform_vec(rng, len, 0.0, 1.0)
                },
                |v: &Vec<f64>| v.len() < 2,
            );
        }));
        let msg = second
            .err()
            .and_then(|p| {
                p.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic!("payload is a String"))
            })
            .unwrap();
        assert!(
            msg.contains("persisted regression"),
            "replayed failure labelled as persisted: {msg}"
        );
        assert!(msg.contains(&format!("{persisted_seed:#018x}")), "{msg}");

        std::env::remove_var("ICN_TESTKIT_REGRESSIONS");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn passing_property_persists_nothing() {
        let dir = regression_dir();
        cases_persisted(
            "always-passes",
            8,
            |rng| uniform_vec(rng, 4, 0.0, 1.0),
            |v: &Vec<f64>| v.iter().all(|x| x.is_finite()),
        );
        assert!(!dir.join("always-passes.seeds").exists());
    }
}
