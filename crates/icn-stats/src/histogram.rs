//! Fixed-width histograms.
//!
//! Figure 1 of the paper contrasts the histograms of (i) max-normalised
//! traffic, (ii) RCA and (iii) RSCA over the services of sample antennas to
//! motivate the RSCA transform. [`Histogram`] is the shared binning used by
//! that figure's harness and by report rendering.

/// A fixed-width histogram over a closed interval `[lo, hi]`.
///
/// Values exactly equal to `hi` land in the last bin; values outside the
/// range are counted separately as underflow/overflow so that no mass is
/// silently dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// If `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: zero bins");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "Histogram: non-finite bounds"
        );
        assert!(lo < hi, "Histogram: lo must be < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram directly from data.
    pub fn of(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation. NaN is counted as overflow (it is out of every
    /// bin) so that mass conservation still holds.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            self.overflow += 1;
            return;
        }
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let mut idx = ((v - self.lo) / width) as usize;
            if idx >= self.counts.len() {
                idx = self.counts.len() - 1; // v == hi
            }
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above `hi` (including NaN).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(left_edge, right_edge)` of bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "Histogram::edges: bin out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Bin centres, convenient for plotting/series output.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.bins())
            .map(|i| {
                let (l, r) = self.edges(i);
                0.5 * (l + r)
            })
            .collect()
    }

    /// Bin frequencies normalised by the total count (empty histogram yields
    /// all zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.bins()];
        }
        self.counts.iter().map(|&c| c as f64 / t as f64).collect()
    }

    /// Index of the fullest bin (first on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_exact() {
        let h = Histogram::of(&[0.0, 0.25, 0.5, 0.75, 1.0], 0.0, 1.0, 4);
        // 0.0 -> bin0, 0.25 -> bin1, 0.5 -> bin2, 0.75 -> bin3, 1.0 -> bin3.
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_counted() {
        let h = Histogram::of(&[-1.0, 0.5, 2.0, f64::NAN], 0.0, 1.0, 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn mass_conservation() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.013 - 2.0).collect();
        let h = Histogram::of(&data, 0.0, 5.0, 17);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(0.0, 2.0, 4);
        assert_eq!(h.edges(0), (0.0, 0.5));
        assert_eq!(h.edges(3), (1.5, 2.0));
        assert_eq!(h.centers(), vec![0.25, 0.75, 1.25, 1.75]);
    }

    #[test]
    fn frequencies_sum_below_one_with_outliers() {
        let h = Histogram::of(&[0.1, 0.2, 9.0], 0.0, 1.0, 2);
        let f: f64 = h.frequencies().iter().sum();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_frequencies_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mode_bin_first_on_tie() {
        let h = Histogram::of(&[0.1, 0.9], 0.0, 1.0, 2);
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn inverted_bounds_panics() {
        Histogram::new(1.0, 0.0, 3);
    }
}
