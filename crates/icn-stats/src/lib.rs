//! # icn-stats — numeric substrate for the ICN reproduction
//!
//! Small, dependency-free numerical building blocks shared by every other
//! crate in the workspace:
//!
//! * [`matrix`] — a dense row-major `f64` matrix with row/column views and
//!   aggregation helpers; the canonical container for the antenna × service
//!   traffic matrix `T` of the paper (Section 4.1).
//! * [`rng`] — deterministic pseudo-random generators (SplitMix64 and
//!   Xoshiro256++) plus the sampling distributions the synthetic measurement
//!   substrate needs (uniform, normal, log-normal, exponential, Poisson,
//!   categorical, Dirichlet-like share vectors). Bit-for-bit reproducible for
//!   a fixed seed on every platform.
//! * [`summary`] — mean / variance / standard deviation / median / quantiles
//!   / min / max over slices, with NaN-hostile debug assertions.
//! * [`histogram`] — fixed-width binning used by Figure 1 of the paper.
//! * [`distance`] — metric kernels (Euclidean, squared Euclidean, Manhattan,
//!   Chebyshev, cosine distance) used by the clustering substrate.
//! * [`normalize`] — min-max, global-max, z-score and row-stochastic
//!   normalisation (the "normalized traffic" panel of Figure 1).
//! * [`rank`] — argsort / top-k / rank transforms used for feature
//!   importance orderings.
//! * [`par`] — order-preserving scoped-thread parallel map (the workspace's
//!   zero-dependency stand-in for rayon); results never depend on the
//!   thread schedule.
//! * [`check`] — a deterministic property-test harness over [`rng::Rng`]
//!   seeded case streams.
//!
//! The crate is intentionally free of external dependencies so that numeric
//! results are stable across toolchains, which the integration tests rely on
//! for byte-for-byte determinism of the whole study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod distance;
pub mod histogram;
pub mod matrix;
pub mod normalize;
pub mod par;
pub mod rank;
pub mod rng;
pub mod summary;

pub use distance::Metric;
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use rng::Rng;
