//! Order-preserving parallel map over index ranges.
//!
//! The workspace previously leaned on `rayon`, which the offline build
//! environment cannot fetch; this module provides the one shape of
//! parallelism the codebase actually uses — `(0..n)` mapped through a pure
//! function, results collected in index order — on `std::thread::scope`.
//!
//! Determinism: the output of [`map_indexed`] depends only on `f`, never on
//! the thread schedule. Work is handed out as contiguous index chunks via
//! an atomic cursor (so fast threads steal remaining chunks), and each
//! chunk's results are stitched back in index order at the end.
//!
//! Thread count comes from `std::thread::available_parallelism`, overridden
//! by the `ICN_THREADS` environment variable when set (useful for overhead
//! experiments, CI determinism checks and bench sweeps — though results
//! never depend on it). The override may exceed the hardware count, so
//! benches can pin a worker count on any machine.
//!
//! Observability: when the global `icn_obs` registry is collecting,
//! [`map_indexed`] hands the dispatching thread's open span to every
//! worker ([`icn_obs::current_handoff`]), so spans opened inside `f`
//! parent to the dispatching stage — the span tree looks the same at any
//! `ICN_THREADS`, including the sequential fallback. With observability
//! disabled this costs a single relaxed atomic load per call.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Effective worker-thread count for parallel sections: the `ICN_THREADS`
/// environment override when set (≥ 1, may exceed the hardware count),
/// otherwise `std::thread::available_parallelism`. This is also the value
/// bench reports record as `env.threads`; results never depend on it.
pub fn thread_count() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
    std::env::var("ICN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(hw)
}

/// Number of worker threads to use for `n` items.
fn workers_for(n: usize) -> usize {
    thread_count().min(n.max(1))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// `f` must be pure with respect to its argument for the result to be
/// deterministic (all call sites in this workspace fork per-index RNG
/// streams, which preserves that).
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = workers_for(n);
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // ~4 chunks per thread balances stealing against bookkeeping.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    // Capture the dispatching thread's open span (None when observability
    // is disabled — one relaxed load) so spans opened inside `f` on the
    // workers parent to the dispatching stage instead of becoming
    // disconnected roots. Purely observational: no effect on results.
    let handoff = icn_obs::current_handoff();
    std::thread::scope(|scope| {
        let (cursor, parts, f) = (&cursor, &parts, &f);
        for _ in 0..threads {
            let handoff = handoff.clone();
            scope.spawn(move || {
                let _adopt = handoff.as_ref().map(icn_obs::Handoff::adopt);
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let block: Vec<R> = (start..end).map(f).collect();
                    parts
                        .lock()
                        .expect("par worker poisoned")
                        .push((start, block));
                }
            });
        }
    });
    let mut parts = parts.into_inner().expect("par result poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in parts {
        out.extend(block);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Maps `f` over contiguous index chunks of width `chunk`, in parallel,
/// returning the per-chunk results in chunk order.
///
/// This is the deterministic chunk-reduction building block for kernels
/// that fold many work items into one accumulator per chunk (e.g. one SHAP
/// matrix per sample chunk, summed over trees in a fixed order): because a
/// chunk is processed start-to-finish by exactly one worker, any in-chunk
/// reduction order the caller chooses is preserved bit-for-bit regardless
/// of the thread count, and stitching the chunk results back in index
/// order yields a schedule-independent total result.
///
/// The final chunk may be shorter than `chunk` when `chunk` does not
/// divide `n`.
pub fn map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk >= 1, "par::map_chunks: chunk must be >= 1");
    let n_chunks = n.div_ceil(chunk);
    map_indexed(n_chunks, |ci| {
        let start = ci * chunk;
        f(start..(start + chunk).min(n))
    })
}

/// Fills `out` in place, in parallel, by contiguous chunks of `chunk`
/// elements: `f(range, slice)` receives each chunk's global index range and
/// the matching mutable sub-slice (`slice.len() == range.len()`; the final
/// chunk may be shorter).
///
/// This is the zero-copy sibling of [`map_chunks`] for kernels whose output
/// is one large flat buffer (e.g. the agglomeration working matrix): the
/// caller allocates once and workers write their disjoint windows directly,
/// instead of allocating per-chunk vectors that get stitched back with an
/// extra pass over the whole buffer. Determinism is structural — the chunk
/// partition depends only on `out.len()` and `chunk`, each element is
/// written by exactly one chunk, and `f` sees the same `(range, data)`
/// pairs at any thread count (including the sequential fallback).
///
/// The disjoint hand-out is `split_at_mut` + one `Mutex<Option<&mut [T]>>`
/// per chunk (taken exactly once, under an atomic cursor), so no `unsafe`
/// is involved.
pub fn fill_chunks<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(chunk >= 1, "par::fill_chunks: chunk must be >= 1");
    let n = out.len();
    let n_chunks = n.div_ceil(chunk);
    let mut bounds = Vec::with_capacity(n_chunks + 1);
    bounds.extend((0..n_chunks).map(|c| c * chunk));
    bounds.push(n);
    fill_blocks(out, &bounds, |b, s| {
        let lo = b * chunk;
        f(lo..lo + s.len(), s);
    });
}

/// Fills `out` in place, in parallel, by the caller's own block partition:
/// `bounds` is the ascending list of cut offsets (`bounds[0] == 0`,
/// `bounds.last() == out.len()`), and `f(b, slice)` receives each block
/// index `b` with the mutable window `out[bounds[b]..bounds[b + 1]]`.
///
/// This is [`fill_chunks`] for irregular partitions — e.g. the condensed
/// distance matrix, where row-block `i` holds `n − 1 − i` entries, so equal
/// *row* chunks are unequal *element* spans. Empty blocks are allowed (their
/// slice is empty). Determinism is structural, exactly as in
/// [`fill_chunks`]: the partition is caller-fixed, every element belongs to
/// one block, and `f` sees the same `(b, data)` pairs at any thread count.
pub fn fill_blocks<T, F>(out: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        bounds.first() == Some(&0) && bounds.last() == Some(&out.len()),
        "par::fill_blocks: bounds must run from 0 to out.len()"
    );
    let n_blocks = bounds.len() - 1;
    let threads = workers_for(n_blocks);
    if threads <= 1 || n_blocks < 2 {
        let mut rest = out;
        for b in 0..n_blocks {
            assert!(
                bounds[b] <= bounds[b + 1],
                "par::fill_blocks: descending bounds"
            );
            let (head, tail) = rest.split_at_mut(bounds[b + 1] - bounds[b]);
            rest = tail;
            f(b, head);
        }
        return;
    }
    // Disjoint hand-out: each block's window sits behind its own
    // `Mutex<Option<..>>`, taken exactly once under an atomic cursor — no
    // `unsafe`, and the lock per block is negligible next to block work.
    let mut slices: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(n_blocks);
    {
        let mut rest = out;
        for b in 0..n_blocks {
            assert!(
                bounds[b] <= bounds[b + 1],
                "par::fill_blocks: descending bounds"
            );
            let (head, tail) = rest.split_at_mut(bounds[b + 1] - bounds[b]);
            rest = tail;
            slices.push(Mutex::new(Some(head)));
        }
    }
    let cursor = AtomicUsize::new(0);
    let handoff = icn_obs::current_handoff();
    std::thread::scope(|scope| {
        let (cursor, slices, f) = (&cursor, &slices, &f);
        for _ in 0..threads {
            let handoff = handoff.clone();
            scope.spawn(move || {
                let _adopt = handoff.as_ref().map(icn_obs::Handoff::adopt);
                loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= slices.len() {
                        break;
                    }
                    let taken = slices[b].lock().expect("par fill poisoned").take();
                    if let Some(s) = taken {
                        f(b, s);
                    }
                }
            });
        }
    });
}

/// Parallel sum of `f(i)` over `0..n` (order-independent reduction of an
/// associative/commutative combination; used where rayon's `map().sum()`
/// was). Summation order is fixed (index order) so results are bit-stable.
pub fn sum_indexed<F>(n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    map_indexed(n, f).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = map_indexed(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn matches_sequential_map() {
        let f = |i: usize| (i as f64).sin() * (i as f64 + 1.0).ln();
        let par: Vec<f64> = map_indexed(777, f);
        let seq: Vec<f64> = (0..777).map(f).collect();
        assert_eq!(par, seq); // bit-for-bit
    }

    #[test]
    fn handles_tiny_and_empty_inputs() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn sum_matches_sequential() {
        let s = sum_indexed(500, |i| 1.0 / (i as f64 + 1.0));
        let t: f64 = (0..500).map(|i| 1.0 / (i as f64 + 1.0)).sum();
        assert_eq!(s, t);
    }

    #[test]
    fn non_copy_results_supported() {
        let out = map_indexed(50, |i| vec![i; i % 5]);
        assert_eq!(out[4], vec![4; 4]);
    }

    #[test]
    fn map_chunks_covers_ranges_in_order() {
        // 10 items in chunks of 3: ragged tail chunk of 1.
        let ranges = map_chunks(10, 3, |r| (r.start, r.end));
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        // Chunk wider than n: one chunk.
        assert_eq!(map_chunks(4, 100, |r| r.len()), vec![4]);
        // Empty input: no chunks.
        assert_eq!(map_chunks(0, 5, |r| r.len()), Vec::<usize>::new());
    }

    #[test]
    fn map_chunks_matches_sequential_fold() {
        let f = |i: usize| (i as f64).cos();
        let chunked: Vec<f64> = map_chunks(523, 17, |r| r.map(f).sum::<f64>());
        let seq: Vec<f64> = (0..523)
            .collect::<Vec<usize>>()
            .chunks(17)
            .map(|c| c.iter().map(|&i| f(i)).sum::<f64>())
            .collect();
        assert_eq!(chunked, seq); // bit-for-bit: in-chunk order is preserved
    }

    #[test]
    #[should_panic(expected = "chunk must be >= 1")]
    fn map_chunks_rejects_zero_chunk() {
        map_chunks(10, 0, |r| r.len());
    }

    #[test]
    fn fill_chunks_writes_every_element_once() {
        let mut out = vec![0usize; 523];
        fill_chunks(&mut out, 17, |r, s| {
            assert_eq!(s.len(), r.len());
            for (k, v) in r.zip(s.iter_mut()) {
                *v += k * 3 + 1; // += would expose double-writes
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3 + 1);
        }
    }

    #[test]
    fn fill_chunks_matches_map_chunks_stitch() {
        let f = |i: usize| (i as f64).sin() * (i as f64 + 2.0).ln();
        let stitched: Vec<f64> = map_chunks(777, 31, |r| r.map(f).collect::<Vec<f64>>())
            .into_iter()
            .flatten()
            .collect();
        let mut filled = vec![0.0f64; 777];
        fill_chunks(&mut filled, 31, |r, s| {
            for (k, v) in r.zip(s.iter_mut()) {
                *v = f(k);
            }
        });
        assert_eq!(
            stitched.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
            filled.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn fill_chunks_thread_invariant_and_degenerate() {
        // Single-chunk and empty buffers take the sequential fallback.
        let mut one = vec![0u8; 3];
        fill_chunks(&mut one, 100, |r, s| {
            assert_eq!(r, 0..3);
            s.fill(9);
        });
        assert_eq!(one, vec![9, 9, 9]);
        let mut empty: Vec<u8> = Vec::new();
        fill_chunks(&mut empty, 4, |_, _| panic!("no chunks expected"));
        // Pinned single thread writes the same bytes as the default count.
        let render = |buf: &mut [u64]| {
            fill_chunks(buf, 13, |r, s| {
                for (k, v) in r.zip(s.iter_mut()) {
                    *v = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            });
        };
        let mut multi = vec![0u64; 301];
        render(&mut multi);
        std::env::set_var("ICN_THREADS", "1");
        let mut single = vec![0u64; 301];
        render(&mut single);
        std::env::remove_var("ICN_THREADS");
        assert_eq!(multi, single);
    }

    #[test]
    #[should_panic(expected = "chunk must be >= 1")]
    fn fill_chunks_rejects_zero_chunk() {
        fill_chunks(&mut [0u8; 4][..], 0, |_, _| {});
    }

    #[test]
    fn worker_spans_adopt_the_dispatching_span() {
        // Only this test in the icn-stats binary touches the global
        // registry, so no cross-test lock is needed here.
        let reg = icn_obs::global();
        reg.reset();
        reg.enable();
        {
            let _stage = icn_obs::Span::enter("dispatch");
            let out = map_indexed(64, |i| {
                let _s = icn_obs::Span::enter("work");
                i * 2
            });
            assert_eq!(out[10], 20);
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        // Worker spans landed under the dispatching span, never as roots.
        assert_eq!(snap.spans["dispatch/work"].0, 64);
        assert!(!snap.spans.contains_key("work"));
        let dispatch = snap
            .span_tree
            .iter()
            .find(|s| s.path == "dispatch")
            .unwrap();
        for s in snap.span_tree.iter().filter(|s| s.path == "dispatch/work") {
            assert_eq!(s.parent, Some(dispatch.id));
        }
    }

    #[test]
    fn thread_count_honors_env_override() {
        std::env::set_var("ICN_THREADS", "3");
        let n = thread_count();
        std::env::remove_var("ICN_THREADS");
        assert_eq!(n, 3);
        // Invalid values fall back to hardware parallelism.
        std::env::set_var("ICN_THREADS", "zero");
        let fallback = thread_count();
        std::env::remove_var("ICN_THREADS");
        assert!(fallback >= 1);
    }
}
