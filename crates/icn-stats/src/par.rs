//! Order-preserving parallel map over index ranges.
//!
//! The workspace previously leaned on `rayon`, which the offline build
//! environment cannot fetch; this module provides the one shape of
//! parallelism the codebase actually uses — `(0..n)` mapped through a pure
//! function, results collected in index order — on `std::thread::scope`.
//!
//! Determinism: the output of [`map_indexed`] depends only on `f`, never on
//! the thread schedule. Work is handed out as contiguous index chunks via
//! an atomic cursor (so fast threads steal remaining chunks), and each
//! chunk's results are stitched back in index order at the end.
//!
//! Thread count comes from `std::thread::available_parallelism`, capped by
//! the `ICN_THREADS` environment variable when set (useful for overhead
//! experiments and CI determinism checks — though results never depend on
//! it).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
    let cap = std::env::var("ICN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(hw);
    hw.min(cap).min(n.max(1))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// `f` must be pure with respect to its argument for the result to be
/// deterministic (all call sites in this workspace fork per-index RNG
/// streams, which preserves that).
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = thread_count(n);
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // ~4 chunks per thread balances stealing against bookkeeping.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let block: Vec<R> = (start..end).map(&f).collect();
                parts
                    .lock()
                    .expect("par worker poisoned")
                    .push((start, block));
            });
        }
    });
    let mut parts = parts.into_inner().expect("par result poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in parts {
        out.extend(block);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Parallel sum of `f(i)` over `0..n` (order-independent reduction of an
/// associative/commutative combination; used where rayon's `map().sum()`
/// was). Summation order is fixed (index order) so results are bit-stable.
pub fn sum_indexed<F>(n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    map_indexed(n, f).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = map_indexed(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn matches_sequential_map() {
        let f = |i: usize| (i as f64).sin() * (i as f64 + 1.0).ln();
        let par: Vec<f64> = map_indexed(777, f);
        let seq: Vec<f64> = (0..777).map(f).collect();
        assert_eq!(par, seq); // bit-for-bit
    }

    #[test]
    fn handles_tiny_and_empty_inputs() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn sum_matches_sequential() {
        let s = sum_indexed(500, |i| 1.0 / (i as f64 + 1.0));
        let t: f64 = (0..500).map(|i| 1.0 / (i as f64 + 1.0)).sum();
        assert_eq!(s, t);
    }

    #[test]
    fn non_copy_results_supported() {
        let out = map_indexed(50, |i| vec![i; i % 5]);
        assert_eq!(out[4], vec![4; 4]);
    }
}
