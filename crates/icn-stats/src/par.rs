//! Order-preserving parallel map over index ranges.
//!
//! The workspace previously leaned on `rayon`, which the offline build
//! environment cannot fetch; this module provides the one shape of
//! parallelism the codebase actually uses — `(0..n)` mapped through a pure
//! function, results collected in index order — on `std::thread::scope`.
//!
//! Determinism: the output of [`map_indexed`] depends only on `f`, never on
//! the thread schedule. Work is handed out as contiguous index chunks via
//! an atomic cursor (so fast threads steal remaining chunks), and each
//! chunk's results are stitched back in index order at the end.
//!
//! Thread count comes from `std::thread::available_parallelism`, overridden
//! by the `ICN_THREADS` environment variable when set (useful for overhead
//! experiments, CI determinism checks and bench sweeps — though results
//! never depend on it). The override may exceed the hardware count, so
//! benches can pin a worker count on any machine.
//!
//! Observability: when the global `icn_obs` registry is collecting,
//! [`map_indexed`] hands the dispatching thread's open span to every
//! worker ([`icn_obs::current_handoff`]), so spans opened inside `f`
//! parent to the dispatching stage — the span tree looks the same at any
//! `ICN_THREADS`, including the sequential fallback. With observability
//! disabled this costs a single relaxed atomic load per call.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Effective worker-thread count for parallel sections: the `ICN_THREADS`
/// environment override when set (≥ 1, may exceed the hardware count),
/// otherwise `std::thread::available_parallelism`. This is also the value
/// bench reports record as `env.threads`; results never depend on it.
pub fn thread_count() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |v| v.get());
    std::env::var("ICN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(hw)
}

/// Number of worker threads to use for `n` items.
fn workers_for(n: usize) -> usize {
    thread_count().min(n.max(1))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// `f` must be pure with respect to its argument for the result to be
/// deterministic (all call sites in this workspace fork per-index RNG
/// streams, which preserves that).
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = workers_for(n);
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    // ~4 chunks per thread balances stealing against bookkeeping.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    // Capture the dispatching thread's open span (None when observability
    // is disabled — one relaxed load) so spans opened inside `f` on the
    // workers parent to the dispatching stage instead of becoming
    // disconnected roots. Purely observational: no effect on results.
    let handoff = icn_obs::current_handoff();
    std::thread::scope(|scope| {
        let (cursor, parts, f) = (&cursor, &parts, &f);
        for _ in 0..threads {
            let handoff = handoff.clone();
            scope.spawn(move || {
                let _adopt = handoff.as_ref().map(icn_obs::Handoff::adopt);
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let block: Vec<R> = (start..end).map(f).collect();
                    parts
                        .lock()
                        .expect("par worker poisoned")
                        .push((start, block));
                }
            });
        }
    });
    let mut parts = parts.into_inner().expect("par result poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in parts {
        out.extend(block);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Maps `f` over contiguous index chunks of width `chunk`, in parallel,
/// returning the per-chunk results in chunk order.
///
/// This is the deterministic chunk-reduction building block for kernels
/// that fold many work items into one accumulator per chunk (e.g. one SHAP
/// matrix per sample chunk, summed over trees in a fixed order): because a
/// chunk is processed start-to-finish by exactly one worker, any in-chunk
/// reduction order the caller chooses is preserved bit-for-bit regardless
/// of the thread count, and stitching the chunk results back in index
/// order yields a schedule-independent total result.
///
/// The final chunk may be shorter than `chunk` when `chunk` does not
/// divide `n`.
pub fn map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk >= 1, "par::map_chunks: chunk must be >= 1");
    let n_chunks = n.div_ceil(chunk);
    map_indexed(n_chunks, |ci| {
        let start = ci * chunk;
        f(start..(start + chunk).min(n))
    })
}

/// Parallel sum of `f(i)` over `0..n` (order-independent reduction of an
/// associative/commutative combination; used where rayon's `map().sum()`
/// was). Summation order is fixed (index order) so results are bit-stable.
pub fn sum_indexed<F>(n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    map_indexed(n, f).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = map_indexed(1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn matches_sequential_map() {
        let f = |i: usize| (i as f64).sin() * (i as f64 + 1.0).ln();
        let par: Vec<f64> = map_indexed(777, f);
        let seq: Vec<f64> = (0..777).map(f).collect();
        assert_eq!(par, seq); // bit-for-bit
    }

    #[test]
    fn handles_tiny_and_empty_inputs() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn sum_matches_sequential() {
        let s = sum_indexed(500, |i| 1.0 / (i as f64 + 1.0));
        let t: f64 = (0..500).map(|i| 1.0 / (i as f64 + 1.0)).sum();
        assert_eq!(s, t);
    }

    #[test]
    fn non_copy_results_supported() {
        let out = map_indexed(50, |i| vec![i; i % 5]);
        assert_eq!(out[4], vec![4; 4]);
    }

    #[test]
    fn map_chunks_covers_ranges_in_order() {
        // 10 items in chunks of 3: ragged tail chunk of 1.
        let ranges = map_chunks(10, 3, |r| (r.start, r.end));
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        // Chunk wider than n: one chunk.
        assert_eq!(map_chunks(4, 100, |r| r.len()), vec![4]);
        // Empty input: no chunks.
        assert_eq!(map_chunks(0, 5, |r| r.len()), Vec::<usize>::new());
    }

    #[test]
    fn map_chunks_matches_sequential_fold() {
        let f = |i: usize| (i as f64).cos();
        let chunked: Vec<f64> = map_chunks(523, 17, |r| r.map(f).sum::<f64>());
        let seq: Vec<f64> = (0..523)
            .collect::<Vec<usize>>()
            .chunks(17)
            .map(|c| c.iter().map(|&i| f(i)).sum::<f64>())
            .collect();
        assert_eq!(chunked, seq); // bit-for-bit: in-chunk order is preserved
    }

    #[test]
    #[should_panic(expected = "chunk must be >= 1")]
    fn map_chunks_rejects_zero_chunk() {
        map_chunks(10, 0, |r| r.len());
    }

    #[test]
    fn worker_spans_adopt_the_dispatching_span() {
        // Only this test in the icn-stats binary touches the global
        // registry, so no cross-test lock is needed here.
        let reg = icn_obs::global();
        reg.reset();
        reg.enable();
        {
            let _stage = icn_obs::Span::enter("dispatch");
            let out = map_indexed(64, |i| {
                let _s = icn_obs::Span::enter("work");
                i * 2
            });
            assert_eq!(out[10], 20);
        }
        reg.disable();
        let snap = reg.snapshot();
        reg.reset();
        // Worker spans landed under the dispatching span, never as roots.
        assert_eq!(snap.spans["dispatch/work"].0, 64);
        assert!(!snap.spans.contains_key("work"));
        let dispatch = snap
            .span_tree
            .iter()
            .find(|s| s.path == "dispatch")
            .unwrap();
        for s in snap.span_tree.iter().filter(|s| s.path == "dispatch/work") {
            assert_eq!(s.parent, Some(dispatch.id));
        }
    }

    #[test]
    fn thread_count_honors_env_override() {
        std::env::set_var("ICN_THREADS", "3");
        let n = thread_count();
        std::env::remove_var("ICN_THREADS");
        assert_eq!(n, 3);
        // Invalid values fall back to hardware parallelism.
        std::env::set_var("ICN_THREADS", "zero");
        let fallback = thread_count();
        std::env::remove_var("ICN_THREADS");
        assert!(fallback >= 1);
    }
}
