//! Dense row-major `f64` matrix.
//!
//! The paper's central object is the traffic matrix `T` with one row per
//! antenna and one column per mobile service (Section 4.1). [`Matrix`] is a
//! deliberately simple container: contiguous storage, checked indexing in
//! debug builds, and the handful of aggregation/view operations the pipeline
//! needs (row/column sums, per-row and per-column maps, transpose, column
//! extraction). It is not a linear-algebra library — we add operations only
//! when a paper experiment needs them.

/// Dense row-major matrix of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested rows. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols, "Matrix::get out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols, "Matrix::set out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "Matrix::row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "Matrix::row_mut out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies one column into a new vector (columns are strided, so this
    /// cannot be a slice borrow).
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "Matrix::col out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Full backing storage, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Per-row sums: `out[i] = Σ_j m[i][j]` — the antenna totals `T_i`.
    pub fn row_sums(&self) -> Vec<f64> {
        self.iter_rows().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums: `out[j] = Σ_i m[i][j]` — the service totals `T_j`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Grand total of all entries — `T_tot` in Eq. (1).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest entry (0.0 for an empty matrix). NaN entries are ignored.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied elementwise.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// New matrix keeping only the rows whose indices appear in `idx`
    /// (in the order given; duplicates allowed — used for bootstrap samples).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &r in idx {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Vertically stacks `self` on top of `other`. Column counts must match.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// True if any entry is NaN or infinite — guard used before clustering.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn set_then_get() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn row_and_col_views() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn sums_match_hand_computation() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.total(), 21.0);
    }

    #[test]
    fn max_ignores_empty() {
        assert_eq!(Matrix::zeros(0, 0).max(), 0.0);
        assert_eq!(sample().max(), 6.0);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let m = sample();
        let doubled = m.map(|v| 2.0 * v);
        let mut m2 = m.clone();
        m2.map_inplace(|v| 2.0 * v);
        assert_eq!(doubled, m2);
        assert_eq!(doubled.get(1, 1), 10.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = sample();
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(s.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let m = sample();
        let v = m.vstack(&m);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.row(3), m.row(1));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn vstack_mismatch_panics() {
        sample().vstack(&Matrix::zeros(1, 2));
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m.set(0, 1, f64::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn iter_rows_covers_all() {
        let m = sample();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }
}
