//! Distance kernels between feature vectors.
//!
//! The clustering substrate (Ward linkage, silhouette, Dunn, k-means) is
//! parameterised over a [`Metric`]. The paper uses Euclidean geometry (Ward's
//! criterion is defined on squared Euclidean distances); the other metrics
//! exist for the linkage-ablation bench (B2 in DESIGN.md) and for tests of
//! metric axioms.

/// A distance metric between equal-length `f64` vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// Squared L2 distance (not a metric — violates the triangle
    /// inequality — but the natural quantity for Ward's variance criterion).
    SqEuclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum coordinate difference (L∞).
    Chebyshev,
    /// `1 − cosine similarity`; 0 for parallel vectors, 2 for anti-parallel.
    /// Zero vectors are treated as orthogonal to everything (distance 1).
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b`.
    ///
    /// # Panics
    /// If the slices have different lengths.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "Metric::distance: length mismatch");
        match self {
            Metric::Euclidean => sq_euclidean(a, b).sqrt(),
            Metric::SqEuclidean => sq_euclidean(a, b),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Cosine => {
                let mut dot = 0.0;
                let mut na = 0.0;
                let mut nb = 0.0;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na.sqrt() * nb.sqrt())
                }
            }
        }
    }

    /// Human-readable name, used in bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::SqEuclidean => "sq-euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Cosine => "cosine",
        }
    }
}

/// Squared Euclidean distance, the hot inner loop of Ward clustering.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance over four independent accumulator lanes.
///
/// [`sq_euclidean`] is a single serial chain of dependent adds, so its
/// throughput is bounded by FP-add latency. Splitting the sum across four
/// accumulators (lane `l` takes dimensions `l, l+4, l+8, …`) breaks the
/// dependency chain — the same trick the TreeSHAP kernel uses — for a
/// ~4× throughput win on long vectors.
///
/// The summation *order* differs from [`sq_euclidean`], so results may
/// differ in the last few ulps; the function is still fully deterministic
/// (identical inputs give identical bits on every run and thread count).
/// Callers that are pinned to golden hashes must opt in deliberately.
#[inline]
pub fn sq_euclidean4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = qa[0] - qb[0];
        let d1 = qa[1] - qb[1];
        let d2 = qa[2] - qb[2];
        let d3 = qa[3] - qb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 3.0, -1.0];
    const B: [f64; 3] = [4.0, 0.0, -1.0];

    #[test]
    fn euclidean_345_triangle() {
        assert_eq!(Metric::Euclidean.distance(&A, &B), 5.0);
        assert_eq!(euclidean(&A, &B), 5.0);
    }

    #[test]
    fn sq_euclidean_matches() {
        assert_eq!(Metric::SqEuclidean.distance(&A, &B), 25.0);
        assert_eq!(sq_euclidean(&A, &B), 25.0);
    }

    #[test]
    fn manhattan_hand_value() {
        assert_eq!(Metric::Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_hand_value() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn cosine_parallel_orthogonal_antiparallel() {
        let x = [1.0, 0.0];
        let y = [2.0, 0.0];
        let z = [0.0, 5.0];
        let w = [-1.0, 0.0];
        assert!(Metric::Cosine.distance(&x, &y).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&x, &z) - 1.0).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&x, &w) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_one() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in [
            Metric::Euclidean,
            Metric::SqEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
        ] {
            assert_eq!(m.distance(&A, &A), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn symmetry() {
        for m in [
            Metric::Euclidean,
            Metric::SqEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Cosine,
        ] {
            assert_eq!(m.distance(&A, &B), m.distance(&B, &A), "{}", m.name());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn four_lane_matches_scalar_closely() {
        // Deterministic pseudo-random vectors across lengths that exercise
        // every remainder case (0..=3 tail dimensions).
        for len in [1usize, 3, 4, 5, 7, 8, 73, 128] {
            let a: Vec<f64> = (0..len)
                .map(|i| ((i * 37 + 11) % 101) as f64 * 0.13)
                .collect();
            let b: Vec<f64> = (0..len)
                .map(|i| ((i * 53 + 29) % 97) as f64 * 0.07)
                .collect();
            let scalar = sq_euclidean(&a, &b);
            let lanes = sq_euclidean4(&a, &b);
            let tol = 1e-12 * scalar.max(1.0);
            assert!(
                (scalar - lanes).abs() <= tol,
                "len {len}: {scalar} vs {lanes}"
            );
        }
    }

    #[test]
    fn four_lane_exact_on_small_inputs() {
        assert_eq!(sq_euclidean4(&A, &B), 25.0);
        assert_eq!(sq_euclidean4(&[], &[]), 0.0);
    }
}
