//! Distance kernels between feature vectors.
//!
//! The clustering substrate (Ward linkage, silhouette, Dunn, k-means) is
//! parameterised over a [`Metric`]. The paper uses Euclidean geometry (Ward's
//! criterion is defined on squared Euclidean distances); the other metrics
//! exist for the linkage-ablation bench (B2 in DESIGN.md) and for tests of
//! metric axioms.

/// A distance metric between equal-length `f64` vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Straight-line (L2) distance.
    Euclidean,
    /// Squared L2 distance (not a metric — violates the triangle
    /// inequality — but the natural quantity for Ward's variance criterion).
    SqEuclidean,
    /// City-block (L1) distance.
    Manhattan,
    /// Maximum coordinate difference (L∞).
    Chebyshev,
    /// `1 − cosine similarity`; 0 for parallel vectors, 2 for anti-parallel.
    /// Zero vectors are treated as orthogonal to everything (distance 1).
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b`.
    ///
    /// # Panics
    /// If the slices have different lengths.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "Metric::distance: length mismatch");
        match self {
            Metric::Euclidean => sq_euclidean(a, b).sqrt(),
            Metric::SqEuclidean => sq_euclidean(a, b),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Cosine => {
                let mut dot = 0.0;
                let mut na = 0.0;
                let mut nb = 0.0;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na.sqrt() * nb.sqrt())
                }
            }
        }
    }

    /// Human-readable name, used in bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::SqEuclidean => "sq-euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Chebyshev => "chebyshev",
            Metric::Cosine => "cosine",
        }
    }
}

/// Squared Euclidean distance, the hot inner loop of Ward clustering.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 3.0, -1.0];
    const B: [f64; 3] = [4.0, 0.0, -1.0];

    #[test]
    fn euclidean_345_triangle() {
        assert_eq!(Metric::Euclidean.distance(&A, &B), 5.0);
        assert_eq!(euclidean(&A, &B), 5.0);
    }

    #[test]
    fn sq_euclidean_matches() {
        assert_eq!(Metric::SqEuclidean.distance(&A, &B), 25.0);
        assert_eq!(sq_euclidean(&A, &B), 25.0);
    }

    #[test]
    fn manhattan_hand_value() {
        assert_eq!(Metric::Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_hand_value() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn cosine_parallel_orthogonal_antiparallel() {
        let x = [1.0, 0.0];
        let y = [2.0, 0.0];
        let z = [0.0, 5.0];
        let w = [-1.0, 0.0];
        assert!(Metric::Cosine.distance(&x, &y).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&x, &z) - 1.0).abs() < 1e-12);
        assert!((Metric::Cosine.distance(&x, &w) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_one() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in [
            Metric::Euclidean,
            Metric::SqEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
        ] {
            assert_eq!(m.distance(&A, &A), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn symmetry() {
        for m in [
            Metric::Euclidean,
            Metric::SqEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Cosine,
        ] {
            assert_eq!(m.distance(&A, &B), m.distance(&B, &A), "{}", m.name());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }
}
