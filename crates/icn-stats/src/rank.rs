//! Ordering utilities: argsort, top-k, rank transform.
//!
//! The SHAP analysis of the paper ranks services per cluster by mean
//! absolute Shapley value (Figure 5 shows the 25 most influential services);
//! these helpers implement the orderings used there and in report tables.

use std::cmp::Ordering;

/// Indices that would sort `xs` ascending. NaNs sort last, stably.
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| cmp_f64(xs[a], xs[b]));
    idx
}

/// Indices that would sort `xs` descending. NaNs sort last, stably.
pub fn argsort_desc(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| match (xs[a].is_nan(), xs[b].is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => cmp_f64(xs[b], xs[a]),
    });
    idx
}

/// The indices of the `k` largest values, in descending value order.
/// Returns all indices if `k >= xs.len()`.
pub fn top_k(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = argsort_desc(xs);
    idx.truncate(k.min(xs.len()));
    idx
}

/// The indices of the `k` smallest values, in ascending value order.
pub fn bottom_k(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = argsort(xs);
    idx.truncate(k.min(xs.len()));
    idx
}

/// 0-based dense ranks ascending (ties broken by index, i.e. competition
/// order, matching `argsort` stability).
pub fn ranks(xs: &[f64]) -> Vec<usize> {
    let order = argsort(xs);
    let mut r = vec![0usize; xs.len()];
    for (rank, &i) in order.iter().enumerate() {
        r[i] = rank;
    }
    r
}

/// Index of the maximum value (first on ties). Panics on an empty slice.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum value (first on ties). Panics on an empty slice.
pub fn argmin(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v < xs[best] {
            best = i;
        }
    }
    best
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        // Push NaNs to the end regardless of direction.
        None => {
            if a.is_nan() && b.is_nan() {
                Ordering::Equal
            } else if a.is_nan() {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_basic() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(argsort(&xs), vec![1, 2, 0]);
        assert_eq!(argsort_desc(&xs), vec![0, 2, 1]);
    }

    #[test]
    fn argsort_nan_last() {
        let xs = [f64::NAN, 1.0, 0.5];
        assert_eq!(argsort(&xs), vec![2, 1, 0]);
        assert_eq!(argsort_desc(&xs), vec![1, 2, 0]);
    }

    #[test]
    fn top_and_bottom_k() {
        let xs = [10.0, 40.0, 20.0, 30.0];
        assert_eq!(top_k(&xs, 2), vec![1, 3]);
        assert_eq!(bottom_k(&xs, 2), vec![0, 2]);
        assert_eq!(top_k(&xs, 99).len(), 4);
    }

    #[test]
    fn ranks_inverse_of_argsort() {
        let xs = [0.5, -1.0, 2.0];
        assert_eq!(ranks(&xs), vec![1, 0, 2]);
    }

    #[test]
    fn argmax_argmin_first_on_ties() {
        let xs = [2.0, 5.0, 5.0, 1.0, 1.0];
        assert_eq!(argmax(&xs), 1);
        assert_eq!(argmin(&xs), 3);
    }

    #[test]
    #[should_panic(expected = "argmax of empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }
}
