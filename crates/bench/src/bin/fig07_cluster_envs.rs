//! Figure 7 (a–c) — types of indoor environments per cluster.
//!
//! Regenerates the environment composition of each cluster, grouped by the
//! dendrogram super-groups like the paper's three panels, together with
//! the Paris-share statistics the prose quotes (">92 % of clusters 0/4 in
//! Paris", "~60 % of cluster 8 in Paris", "92 % of cluster 2 outside
//! Paris", "70 % of cluster 3 in Paris").
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig07_cluster_envs [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_report::Table;
use icn_synth::Environment;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 7 — environment composition per cluster", &ds);
    let st = study(&ds, &opts);

    let coarse3 = st.dendrogram.cut(3);
    let group_of = |c: usize| {
        let pos = st.labels.iter().position(|&l| l == c).expect("non-empty");
        coarse3[pos]
    };

    for g in 0..3 {
        println!("--- super-group {g} ---");
        let mut header: Vec<String> = vec!["cluster".into(), "n".into(), "paris%".into()];
        header.extend(Environment::ALL.iter().map(|e| e.label().to_string()));
        let mut t = Table::new(header);
        for c in (0..9).filter(|&c| group_of(c) == g) {
            let comp = st.crosstab.cluster_composition(c);
            let mut row = vec![
                c.to_string(),
                st.crosstab.cluster_sizes[c].to_string(),
                format!("{:.0}%", 100.0 * st.crosstab.paris_share[c]),
            ];
            row.extend(comp.iter().map(|&f| format!("{:.0}%", 100.0 * f)));
            t.row(row);
        }
        println!("{}", t.render());
    }
}
