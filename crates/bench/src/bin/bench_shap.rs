//! SHAP micro-benchmark: sweeps the full pipeline over population scales
//! and worker-thread counts, reporting the stage-3 `shap_batch` wall time
//! and throughput gauges per configuration.
//!
//! ```text
//! cargo run --release --bin bench_shap -- \
//!     --scales 0.05,0.25,1.0 --threads 1,max --metrics-out BENCH_pr3.json
//! ```
//!
//! Each configuration runs `IcnStudy::run` on a freshly generated dataset
//! with the global metrics registry reset, `ICN_THREADS` pinned (or
//! removed for `max`), and prints one summary line. The `--metrics-out`
//! report is the `icn-obs/v1` snapshot of the **last** configuration —
//! the sweep orders configurations so that is the largest scale at the
//! highest thread count, directly comparable to `BENCH_baseline.json`.

use icn_core::{IcnStudy, StudyConfig};
use icn_obs::BenchReport;
use icn_synth::{Dataset, SynthConfig};

// Count allocations so `--metrics-out` reports carry the `icn-obs/v3`
// memory section (inert single-branch overhead while metering is off).
#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

struct ShapBenchOpts {
    scales: Vec<f64>,
    threads: Vec<Option<usize>>, // None = hardware max
    seed: u64,
    metrics_out: Option<String>,
}

fn parse_args() -> ShapBenchOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = ShapBenchOpts {
        scales: vec![0.05, 0.25, 1.0],
        threads: vec![Some(1), None],
        seed: SynthConfig::default().seed,
        metrics_out: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scales" => {
                if let Some(v) = args.get(i + 1) {
                    opts.scales = v.split(',').filter_map(|s| s.parse().ok()).collect();
                }
                i += 2;
            }
            "--threads" => {
                if let Some(v) = args.get(i + 1) {
                    opts.threads = v
                        .split(',')
                        .map(|s| {
                            if s == "max" {
                                None
                            } else {
                                Some(s.parse().unwrap_or(1).max(1))
                            }
                        })
                        .collect();
                }
                i += 2;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = args.get(i + 1).cloned();
                i += 2;
            }
            _ => i += 1,
        }
    }
    assert!(!opts.scales.is_empty(), "bench_shap: no scales given");
    assert!(
        !opts.threads.is_empty(),
        "bench_shap: no thread counts given"
    );
    opts
}

fn span_ms(report: &BenchReport, path: &str) -> f64 {
    report
        .spans
        .get(path)
        .map_or(0.0, |&(_, wall)| wall.as_secs_f64() * 1e3)
}

fn main() {
    let opts = parse_args();
    let obs = icn_obs::global();
    obs.enable();

    println!("=== bench shap: scale x thread sweep ===");
    println!(
        "{:>7} {:>7} {:>9} {:>13} {:>15} {:>17}",
        "scale", "threads", "antennas", "shap_ms", "samples/sec", "predict_rows/sec"
    );

    let mut last_report: Option<BenchReport> = None;
    // Thread count is the outer dimension so the final configuration is
    // the largest scale at the highest thread count — that report is the
    // one exported, baseline-comparable.
    for &threads in &opts.threads {
        match threads {
            Some(t) => std::env::set_var("ICN_THREADS", t.to_string()),
            None => std::env::remove_var("ICN_THREADS"),
        }
        for &scale in &opts.scales {
            obs.reset();
            let ds = Dataset::generate(SynthConfig::paper().with_scale(scale).with_seed(opts.seed));
            let study = IcnStudy::run(&ds, StudyConfig::paper());
            let snap = obs.snapshot();
            let report = BenchReport::build(&snap, "bench_shap", scale);
            println!(
                "{:>7.2} {:>7} {:>9} {:>13.1} {:>15.1} {:>17.1}",
                scale,
                report.env.threads,
                study.num_antennas(),
                span_ms(&report, "stage3_surrogate/shap_batch"),
                report
                    .gauges
                    .get("shap.samples_per_sec")
                    .copied()
                    .unwrap_or(0.0),
                report
                    .gauges
                    .get("forest.predict_rows_per_sec")
                    .copied()
                    .unwrap_or(0.0),
            );
            last_report = Some(report);
        }
    }
    std::env::remove_var("ICN_THREADS");

    if let Some(path) = &opts.metrics_out {
        let report = last_report.expect("at least one configuration ran");
        match report.write_to_file(path) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => {
                eprintln!("failed to write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
