//! Figure 6 — Sankey diagram of cluster → environment flows.
//!
//! Regenerates the flow mass between the nine clusters and the eleven
//! indoor environment types, rendered as proportional text bands plus the
//! headline monopolies the paper reads off the diagram (metro/train
//! stations monopolised by the orange group, stadiums by the green group,
//! workspaces dominated by cluster 3's flow).
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig06_sankey [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_synth::Environment;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 6 — cluster -> environment flows", &ds);
    let st = study(&ds, &opts);

    let flows = st.crosstab.flows();
    print!("{}", icn_report::sankey::render(&flows, 2, 36));

    println!("\nheadline monopolies:");
    for env in [
        Environment::Metro,
        Environment::TrainStation,
        Environment::Stadium,
        Environment::Workspace,
        Environment::Airport,
        Environment::Tunnel,
        Environment::Hospital,
    ] {
        let (c, share) = st.crosstab.dominant_cluster(env);
        println!(
            "{:<18} -> cluster {c} holds {:.0}% of its antennas",
            env.label(),
            100.0 * share
        );
    }
}
