//! Stage-by-stage timing of the full-scale pipeline (diagnostic tool).
//!
//! Thin wrapper over the `icn-obs` spans that instrument the pipeline
//! itself: it enables the global registry, runs dataset generation plus
//! the full study, and prints every recorded span with its wall time —
//! so the numbers here are exactly the numbers `--metrics-out` exports.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin profile_stages \
//!     [-- --scale 1.0 --sweep --metrics-out profile.json]
//! ```

use icn_bench::{dataset, parse_opts, study, write_metrics};

// Count allocations so `--metrics-out` reports carry the `icn-obs/v3`
// memory section (inert single-branch overhead while metering is off).
#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

fn main() {
    let opts = parse_opts();
    let obs = icn_obs::global();
    obs.enable();

    let ds = dataset(&opts);
    eprintln!(
        "generated {} antennas at scale {}",
        ds.num_antennas(),
        opts.scale
    );
    let st = study(&ds, &opts);
    eprintln!(
        "study done: {} clusters, surrogate acc {:.4}",
        st.cluster_sizes().len(),
        st.surrogate_accuracy
    );

    let snap = obs.snapshot();
    println!("{:<40} {:>8} {:>12}", "span", "calls", "wall_ms");
    let mut spans: Vec<_> = snap.spans.iter().collect();
    spans.sort_by_key(|s| std::cmp::Reverse(s.1 .1));
    for (path, (calls, wall)) in spans {
        println!(
            "{:<40} {:>8} {:>12.3}",
            path,
            calls,
            wall.as_secs_f64() * 1e3
        );
    }

    write_metrics(&opts, "profile_stages");
}
