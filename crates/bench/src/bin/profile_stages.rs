//! Stage-by-stage timing of the full-scale pipeline (diagnostic tool).
use icn_cluster::{agglomerate_condensed, Condensed, Linkage};
use icn_core::{filter_dead_rows, rsca};
use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_synth::{Dataset, SynthConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let t0 = Instant::now();
    let ds = Dataset::generate(SynthConfig::paper().with_scale(scale));
    eprintln!("generate: {:?} ({} antennas)", t0.elapsed(), ds.num_antennas());

    let t = Instant::now();
    let (live, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&live);
    eprintln!("rsca: {:?}", t.elapsed());

    let t = Instant::now();
    let cond = Condensed::from_rows(&features, Linkage::Ward.base_metric());
    eprintln!("condensed: {:?}", t.elapsed());

    let t = Instant::now();
    let history = agglomerate_condensed(&cond, Linkage::Ward);
    eprintln!("agglomerate: {:?}", t.elapsed());

    let t = Instant::now();
    let labels = history.cut(9);
    eprintln!("cut: {:?}", t.elapsed());

    let t = Instant::now();
    let ts = TrainSet::new(features.clone(), labels.clone());
    let forest = RandomForest::fit(&ts, &ForestConfig::default());
    eprintln!("forest fit: {:?} (oob {:?})", t.elapsed(), forest.oob_accuracy);
    let depth: usize = forest.trees.iter().map(|t| t.depth()).max().unwrap();
    let leaves: usize = forest.trees.iter().map(|t| t.num_leaves()).sum::<usize>() / forest.trees.len();
    eprintln!("forest stats: max depth {depth}, avg leaves {leaves}");

    let t = Instant::now();
    let phi = icn_shap::forest_shap(&forest, features.row(0));
    eprintln!("one-sample forest_shap: {:?} (|phi| {})", t.elapsed(), phi.len());
}
