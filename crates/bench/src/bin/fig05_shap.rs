//! Figure 5 (a–i) — SHAP beeswarm summaries per cluster.
//!
//! Regenerates the nine per-cluster explanations: the random-forest
//! surrogate trained on the clustering labels is explained with TreeSHAP;
//! for each cluster the services are ranked by mean |SHAP| (the paper shows
//! the top 25) with the over-/under-utilisation direction recovered from
//! the SHAP↔feature-value relation (the beeswarm colour axis).
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig05_shap [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 5 — SHAP values per cluster", &ds);
    let st = study(&ds, &opts);

    println!(
        "surrogate fidelity: train accuracy {:.4}, OOB {:?}\n",
        st.surrogate_accuracy, st.surrogate_oob
    );

    let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();
    // Present by dendrogram group, like the paper's layout.
    let coarse3 = st.dendrogram.cut(3);
    let group_of = |c: usize| {
        let pos = st.labels.iter().position(|&l| l == c).expect("non-empty");
        coarse3[pos]
    };
    for g in 0..3 {
        println!("--- super-group {g} ---");
        for ex in st.explanations.iter().filter(|e| group_of(e.class) == g) {
            println!("{}", icn_report::beeswarm::render(ex, &names, 25, 28));
        }
    }
}
