//! Figure 2 — Silhouette score and Dunn index vs number of clusters.
//!
//! Regenerates the k-selection sweep: Ward clustering cut at k = 2..15,
//! both quality indices per k, the detected combined drops (the paper's
//! stopping criterion observes drops at k = 6 and k = 9, selecting 9), and
//! the final selection.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig02_kselection [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts};
use icn_cluster::{agglomerate_condensed, detect_drops, select_k, sweep_k, Condensed, Linkage};
use icn_core::{filter_dead_rows, rsca};
use icn_report::Table;
use icn_stats::Metric;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 2 — silhouette & Dunn vs k", &ds);

    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    eprintln!("clustering {} antennas ...", features.rows());
    let cond_ward = Condensed::from_rows(&features, Linkage::Ward.base_metric());
    let history = agglomerate_condensed(&cond_ward, Linkage::Ward);
    let cond_eucl = Condensed::from_rows(&features, Metric::Euclidean);
    let sweep = sweep_k(&history, &cond_eucl, 2..=15);

    let mut table = Table::new(vec!["k", "silhouette", "dunn"]);
    for q in &sweep {
        table.row(vec![
            q.k.to_string(),
            format!("{:.4}", q.silhouette),
            format!("{:.5}", q.dunn),
        ]);
    }
    println!("{}", table.render());
    let sil: Vec<f64> = sweep.iter().map(|q| q.silhouette).collect();
    let dunn: Vec<f64> = sweep.iter().map(|q| q.dunn).collect();
    println!(
        "{}",
        icn_report::spark::labeled_sparkline("silhouette", &sil)
    );
    println!(
        "{}\n",
        icn_report::spark::labeled_sparkline("dunn      ", &dunn)
    );

    let drops = detect_drops(&sweep, 0.05);
    if drops.is_empty() {
        println!("no combined drops above threshold (paper: drops at k = 6 and k = 9)");
    } else {
        for d in &drops {
            println!(
                "combined drop after k = {} (magnitude {:.3})",
                d.k, d.magnitude
            );
        }
    }
    println!(
        "selected k = {} (paper selects 9, discussing 6 qualitatively)",
        select_k(&sweep, 0.05)
    );
}
