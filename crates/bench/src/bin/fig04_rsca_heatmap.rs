//! Figure 4 — RSCA heatmap of the clustered antennas.
//!
//! Regenerates the per-cluster RSCA structure: one column block per
//! cluster, services on the y-axis, over-utilisation positive ("blue lines"
//! in the paper) and under-utilisation negative ("dark red lines"). We
//! render the cluster-mean profile per service plus the per-cluster top
//! over-/under-utilised services the paper's prose reads off the figure.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig04_rsca_heatmap [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 4 — RSCA heatmap (cluster-mean per service)", &ds);
    let st = study(&ds, &opts);

    // services × clusters matrix of mean RSCA.
    let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();
    let rows: Vec<Vec<f64>> = (0..ds.num_services())
        .map(|j| st.profiles.iter().map(|p| p.mean_rsca[j]).collect())
        .collect();
    let labels: Vec<String> = names.iter().map(|n| format!("{n:<26}")).collect();
    println!("columns = clusters 0..8; '#/+' over-utilised, '=/-' under-utilised\n");
    print!(
        "{}",
        icn_report::heatmap::render_diverging(&rows, Some(&labels))
    );

    println!("\nper-cluster signatures (top over / under-utilised services):");
    for p in &st.profiles {
        let over: Vec<&str> = p.top_over(4).into_iter().map(|j| names[j]).collect();
        let under: Vec<&str> = p.top_under(4).into_iter().map(|j| names[j]).collect();
        println!(
            "cluster {} (n={}, rms {:.3}): over [{}] under [{}]",
            p.cluster,
            p.size,
            p.rms(),
            over.join(", "),
            under.join(", ")
        );
    }
}
