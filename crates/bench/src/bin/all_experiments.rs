//! One-shot summary of every experiment — the source of EXPERIMENTS.md.
//!
//! Runs the study once (sharing the expensive stages across all
//! figure/table summaries) and prints, per experiment id, the compact
//! numbers that DESIGN.md's index promises: enough to compare the measured
//! shape against the paper's claims.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin all_experiments \
//!     [-- --scale 1.0 --sweep --metrics-out metrics.json]
//! ```

use icn_bench::{dataset, parse_opts, study, write_metrics};
use icn_cluster::detect_drops;
use icn_core::{cluster_heatmap, distribution_entropy, filter_dead_rows, label_distribution, rca};
use icn_shap::Direction;
use icn_synth::{Environment, StudyCalendar};

// Count allocations so `--metrics-out` reports carry the `icn-obs/v3`
// memory section (inert single-branch overhead while metering is off).
#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    eprintln!(
        "running all experiments at scale {} ({} antennas; sweep {})",
        opts.scale,
        ds.num_antennas(),
        opts.sweep
    );
    let st = study(&ds, &opts);
    let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();

    println!("== population ==");
    println!(
        "indoor {} / outdoor {} antennas, {} services, scale {}",
        ds.num_antennas(),
        ds.outdoor.len(),
        ds.num_services(),
        opts.scale
    );

    // Table 1.
    println!("\n== table1 ==");
    for env in Environment::ALL {
        let n = ds.antennas.iter().filter(|a| a.environment == env).count();
        println!("{}: {}", env.label(), n);
    }

    // Fig 1.
    println!("\n== fig01 ==");
    let (t_live, _) = filter_dead_rows(&ds.indoor_totals);
    let r = rca(&t_live);
    let max_rca = r
        .as_slice()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let frac_below_half = t_live
        .as_slice()
        .iter()
        .filter(|&&v| v / t_live.max() < 0.01)
        .count() as f64
        / (t_live.rows() * t_live.cols()) as f64;
    println!(
        "normalized traffic: {:.1}% of entries below 1% of max (spike at 0)",
        100.0 * frac_below_half
    );
    println!("max RCA: {max_rca:.2} (unbounded tail; paper sample max 75.88)");
    let rs = &st.rsca;
    let under =
        rs.as_slice().iter().filter(|&&v| v < 0.0).count() as f64 / rs.as_slice().len() as f64;
    println!(
        "RSCA balance: {:.1}% under- / {:.1}% over-utilised",
        100.0 * under,
        100.0 * (1.0 - under)
    );

    // Fig 2.
    println!("\n== fig02 ==");
    if st.k_sweep.is_empty() {
        println!("(sweep disabled; run with --sweep)");
    } else {
        for q in &st.k_sweep {
            println!(
                "k={} silhouette={:.4} dunn={:.5}",
                q.k, q.silhouette, q.dunn
            );
        }
        for d in detect_drops(&st.k_sweep, 0.05) {
            println!(
                "combined drop after k={} (magnitude {:.3})",
                d.k, d.magnitude
            );
        }
    }

    // Fig 3.
    println!("\n== fig03 ==");
    println!("cluster sizes: {:?}", st.cluster_sizes());
    let coarse3 = st.dendrogram.cut(3);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 3];
    for c in 0..9 {
        let pos = st.labels.iter().position(|&l| l == c).unwrap();
        groups[coarse3[pos]].push(c);
    }
    println!("three super-groups: {groups:?}");
    let mut consolidated: Vec<Vec<usize>> = vec![Vec::new(); 6];
    for (fine, &coarse) in st.consolidation.iter().enumerate() {
        consolidated[coarse].push(fine);
    }
    println!("k9->k6 consolidation: {consolidated:?}");

    // Fig 4.
    println!("\n== fig04 ==");
    for p in &st.profiles {
        let over: Vec<&str> = p.top_over(3).into_iter().map(|j| names[j]).collect();
        let under: Vec<&str> = p.top_under(3).into_iter().map(|j| names[j]).collect();
        println!(
            "cluster {} (n={}, rms {:.3}): over [{}] under [{}]",
            p.cluster,
            p.size,
            p.rms(),
            over.join(", "),
            under.join(", ")
        );
    }

    // Fig 5.
    println!("\n== fig05 ==");
    println!(
        "surrogate: train acc {:.4}, OOB {:?}",
        st.surrogate_accuracy, st.surrogate_oob
    );
    for ex in &st.explanations {
        let top: Vec<String> = ex
            .top(5)
            .iter()
            .map(|i| {
                let d = match i.direction {
                    Direction::OverUtilized => "+",
                    Direction::UnderUtilized => "-",
                    Direction::Neutral => "·",
                };
                format!("{d}{}", names[i.feature])
            })
            .collect();
        println!("cluster {}: {}", ex.class, top.join(", "));
    }

    // Fig 6/7/8.
    println!("\n== fig06/07/08 ==");
    for env in Environment::ALL {
        let (c, share) = st.crosstab.dominant_cluster(env);
        println!(
            "{} -> dominant cluster {} ({:.0}%)",
            env.label(),
            c,
            100.0 * share
        );
    }
    for c in 0..9 {
        let (env, share) = st.crosstab.dominant_environment(c);
        println!(
            "cluster {c}: dominant env {} ({:.0}%), paris {:.0}%",
            env.label(),
            100.0 * share,
            100.0 * st.crosstab.paris_share[c]
        );
    }

    // Fig 9.
    println!("\n== fig09 ==");
    let (dom, share) = st.outdoor.dominant;
    println!(
        "outdoor dominant cluster {} with {:.1}% of {} antennas",
        dom,
        100.0 * share,
        st.outdoor.predicted.len()
    );
    println!(
        "entropy indoor {:.3} vs outdoor {:.3}",
        distribution_entropy(&label_distribution(&st.labels, 9)),
        distribution_entropy(&st.outdoor.distribution)
    );

    // Fig 10 (statistics only; full heatmaps via fig10_cluster_temporal).
    println!("\n== fig10 ==");
    let window = StudyCalendar::temporal_window();
    for c in 0..9 {
        let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = st
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| st.labels[*pos] == c)
            .map(|(_, &row)| (&ds.antennas[row], ds.indoor_totals.row(row)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = cluster_heatmap(&members, &rows, &ds.services, 65, &window, ds.root_rng());
        let (env, _) = st.crosstab.dominant_environment(c);
        println!(
            "cluster {c} ({}): commute {:.2}, weekend {:.2}, strike {:.2}, burst {:.1}",
            env.label(),
            hm.commute_ratio(),
            hm.weekend_ratio(),
            hm.strike_dip(),
            hm.burstiness()
        );
    }

    write_metrics(&opts, "all_experiments");
}
