//! Table 1 — summary of indoor environment types.
//!
//! Regenerates the paper's Table 1: the eleven indoor environment
//! categories with their example cases and the antenna count `N_env` per
//! category, as recovered by the name-mining extractor (Section 5.2.1) —
//! not just as generated, so the extraction code path is exercised.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin table1 [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts};
use icn_report::Table;
use icn_synth::mining::{mine_all, MinedLabel};
use icn_synth::Environment;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Table 1 — indoor environment types", &ds);

    // Mine environments from site names (the paper's extraction step).
    let names: Vec<String> = ds.antennas.iter().map(|a| a.site_name.clone()).collect();
    let (mined, unknown) = mine_all(&names);

    let mut counts = std::collections::HashMap::new();
    for label in &mined {
        if let MinedLabel::Env(e) = label {
            *counts.entry(*e).or_insert(0usize) += 1;
        }
    }

    let mut t = Table::new(vec![
        "Environment",
        "Cases",
        "N_env (mined)",
        "N_env (paper)",
    ]);
    for env in Environment::ALL {
        t.row(vec![
            env.label().to_string(),
            env.cases().to_string(),
            counts.get(&env).copied().unwrap_or(0).to_string(),
            env.paper_count().to_string(),
        ]);
    }
    println!("{}", t.render());
    let total: usize = counts.values().sum();
    println!(
        "total mined: {total} ({} unknown names); paper total: {}",
        unknown,
        icn_synth::environments::PAPER_TOTAL_ANTENNAS
    );

    // Section 3: 5G NSA deployment — "the vast majority of those antennas
    // are 4G, as apparently 5G is scarcely used for ICN at this stage".
    let nr = ds
        .antennas
        .iter()
        .filter(|a| a.rat == icn_synth::RadioTech::Nr)
        .count();
    println!(
        "radio technology: {} x 4G eNodeB, {} x 5G gNodeB ({:.1}% NR)",
        ds.antennas.len() - nr,
        nr,
        100.0 * nr as f64 / ds.antennas.len() as f64
    );
}
