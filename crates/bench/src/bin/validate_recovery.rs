//! Validation harness: archetype-recovery quality of the full study
//! (ARI/NMI/purity against the planted ground truth) — the check the real
//! study could never run, and the headline number of EXPERIMENTS.md.
use icn_bench::{dataset, parse_opts, study};
use icn_cluster::{adjusted_rand_index, normalized_mutual_info, purity};

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    let st = study(&ds, &opts);
    let planted: Vec<usize> = st
        .live_rows
        .iter()
        .map(|&i| ds.planted_labels()[i])
        .collect();
    println!(
        "scale {}: N={} ARI={:.4} NMI={:.4} purity={:.4} surrogate_acc={:.4} oob={:?}",
        opts.scale,
        st.num_antennas(),
        adjusted_rand_index(&st.labels, &planted),
        normalized_mutual_info(&st.labels, &planted),
        purity(&st.labels, &planted),
        st.surrogate_accuracy,
        st.surrogate_oob
    );
    // Cluster -> archetype mapping for the record.
    let map = st.cluster_to_archetype(&ds);
    for (c, &a) in map.iter().enumerate() {
        println!(
            "cluster {c} -> archetype {a} ({})",
            icn_synth::Archetype::from_id(a).description()
        );
    }
}
