//! Figure 1 — histograms of normalized traffic, RCA and RSCA.
//!
//! Regenerates the three panels of Figure 1 for a sample of antennas: the
//! max-normalised traffic spikes near zero, RCA is skewed with an unbounded
//! over-utilisation tail (the paper reports a max of 75.88 in its sample),
//! and RSCA is balanced in [−1, 1].
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig01_histograms [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts};
use icn_core::{filter_dead_rows, rca, rsca_from_rca};
use icn_stats::{normalize, Histogram};

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 1 — normalized traffic vs RCA vs RSCA", &ds);

    let (t, _) = filter_dead_rows(&ds.indoor_totals);

    // The paper plots "some antennas": a fixed sample of 20.
    let sample: Vec<usize> = (0..t.rows())
        .step_by((t.rows() / 20).max(1))
        .take(20)
        .collect();
    let sampled = t.select_rows(&sample);

    // Panel 1: traffic normalised by the max application load in-sample.
    let norm = normalize::by_global_max(&sampled);
    let h_norm = Histogram::of(norm.as_slice(), 0.0, 1.0, 40);
    println!(
        "{}",
        icn_report::histogram_plot::render(&h_norm, "normalized traffic", 48)
    );
    let zoom = Histogram::of(norm.as_slice(), 0.0, 0.5, 20);
    println!(
        "{}",
        icn_report::histogram_plot::render(&zoom, "normalized traffic (zoom 0..0.5)", 48)
    );

    // Panel 2: RCA — referenced against the full population, like Eq. (1).
    let rca_full = rca(&t);
    let rca_sample = rca_full.select_rows(&sample);
    let h_rca = Histogram::of(rca_sample.as_slice(), 0.0, 5.0, 40);
    println!("{}", icn_report::histogram_plot::render(&h_rca, "RCA", 48));
    let max_rca = rca_sample
        .as_slice()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!("largest RCA in sample: {max_rca:.2} (paper's sample: 75.88 — the unbounded tail)\n");

    // Panel 3: RSCA — symmetric in [-1, 1].
    let rsca_sample = rsca_from_rca(&rca_sample);
    let h_rsca = Histogram::of(rsca_sample.as_slice(), -1.0, 1.0, 40);
    println!(
        "{}",
        icn_report::histogram_plot::render(&h_rsca, "RSCA", 48)
    );

    // The balance statistic: fraction of mass on each side of 0.
    let (under, over): (usize, usize) =
        rsca_sample.as_slice().iter().fold(
            (0, 0),
            |(u, o), &v| if v < 0.0 { (u + 1, o) } else { (u, o + 1) },
        );
    println!(
        "RSCA balance: {under} under-utilised vs {over} over-utilised samples \
         (RCA in-sample max maps to RSCA {:.3})",
        (max_rca - 1.0) / (max_rca + 1.0)
    );
}
