//! Ablation benches B1–B5 (DESIGN.md): the design choices the paper
//! motivates, quantified against the planted ground truth.
//!
//! * B1 — transform ablation: raw vs max-normalised vs RCA vs RSCA input
//!   to the clustering (Section 4.1's argument).
//! * B2 — linkage ablation: Ward vs single/complete/average.
//! * B3 — k-means baseline vs agglomerative.
//! * B4 — surrogate fidelity vs forest size/depth (Section 5.1.2).
//! * B5 — SHAP estimator agreement: TreeSHAP vs KernelSHAP.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin ablations [-- --scale 0.25]
//! ```

use icn_bench::{banner, dataset, parse_opts};
use icn_cluster::{
    adjusted_rand_index, agglomerate, kmeans_best_of, silhouette_score, Condensed, Linkage,
};
use icn_core::{filter_dead_rows, rca, rsca};
use icn_forest::{ForestConfig, MaxFeatures, RandomForest, TrainSet, TreeConfig};
use icn_report::Table;
use icn_shap::{forest_shap, kernel_shap, KernelShapConfig};
use icn_stats::{normalize, Matrix, Metric, Rng};

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Ablations B1–B5", &ds);

    let (t, live_rows) = filter_dead_rows(&ds.indoor_totals);
    let planted: Vec<usize> = live_rows.iter().map(|&i| ds.planted_labels()[i]).collect();
    let features = rsca(&t);

    // ---------- B1: transform ablation ----------
    println!("B1 — input transform vs archetype recovery (Ward, k=9):");
    let mut b1 = Table::new(vec!["transform", "ARI", "silhouette"]);
    let variants: Vec<(&str, Matrix)> = vec![
        ("raw traffic", t.clone()),
        ("max-normalised", normalize::by_global_max(&t)),
        ("row shares", normalize::row_stochastic(&t)),
        ("RCA", rca(&t)),
        ("RSCA (paper)", features.clone()),
    ];
    for (name, m) in &variants {
        let history = agglomerate(m, Linkage::Ward);
        let labels = history.cut(9);
        let cond = Condensed::from_rows(m, Metric::Euclidean);
        b1.row(vec![
            name.to_string(),
            format!("{:.3}", adjusted_rand_index(&labels, &planted)),
            format!("{:.3}", silhouette_score(&cond, &labels)),
        ]);
    }
    println!("{}", b1.render());

    // ---------- B2: linkage ablation ----------
    println!("B2 — linkage criterion (RSCA features, k=9):");
    let mut b2 = Table::new(vec!["linkage", "ARI"]);
    for linkage in Linkage::ALL {
        let history = agglomerate(&features, linkage);
        let labels = history.cut(9);
        b2.row(vec![
            linkage.name().to_string(),
            format!("{:.3}", adjusted_rand_index(&labels, &planted)),
        ]);
    }
    println!("{}", b2.render());

    // ---------- B3: k-means baseline ----------
    println!("B3 — k-means vs agglomerative (RSCA features):");
    let mut b3 = Table::new(vec!["algorithm", "ARI"]);
    let ward_labels = agglomerate(&features, Linkage::Ward).cut(9);
    b3.row(vec![
        "agglomerative (ward)".to_string(),
        format!("{:.3}", adjusted_rand_index(&ward_labels, &planted)),
    ]);
    let mut rng = Rng::seed_from(42);
    let km = kmeans_best_of(&features, 9, 200, 8, &mut rng);
    b3.row(vec![
        "k-means++ (best of 8)".to_string(),
        format!("{:.3}", adjusted_rand_index(&km.labels, &planted)),
    ]);
    println!("{}", b3.render());

    // ---------- B4: surrogate fidelity sweep ----------
    println!("B4 — surrogate fidelity vs forest size (labels = ward cut):");
    let ts = TrainSet::new(features.clone(), ward_labels.clone());
    let mut b4 = Table::new(vec!["trees", "max depth", "train acc", "OOB acc"]);
    for (n_trees, depth) in [
        (10, usize::MAX),
        (50, usize::MAX),
        (100, usize::MAX),
        (100, 4),
    ] {
        let forest = RandomForest::fit(
            &ts,
            &ForestConfig {
                n_trees,
                tree: TreeConfig {
                    max_depth: depth,
                    max_features: MaxFeatures::Sqrt,
                    ..TreeConfig::default()
                },
                seed: 7,
            },
        );
        b4.row(vec![
            n_trees.to_string(),
            if depth == usize::MAX {
                "∞".into()
            } else {
                depth.to_string()
            },
            format!("{:.3}", forest.accuracy(&ts)),
            format!(
                "{:?}",
                forest.oob_accuracy.map(|x| (x * 1000.0).round() / 1000.0)
            ),
        ]);
    }
    println!("{}", b4.render());

    // Stratified 5-fold CV of the paper-sized surrogate: the sturdier
    // generalisation check next to OOB (cluster sizes are unbalanced).
    let cv = icn_forest::cross_validate(
        &ts,
        &ForestConfig {
            n_trees: 50,
            seed: 7,
            ..ForestConfig::default()
        },
        5,
        13,
    );
    println!(
        "B4b — stratified 5-fold CV: accuracy {:.3}, macro-F1 {:.3} (per-fold acc {:?})\n",
        cv.mean_accuracy(),
        cv.mean_macro_f1(),
        cv.fold_accuracy
            .iter()
            .map(|a| (a * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // ---------- B2b: bootstrap stability of the k = 9 partition ----------
    println!("B2b — bootstrap stability (70% subsamples, 8 replicates):");
    let mut b2b = Table::new(vec!["k", "mean ARI", "min ARI"]);
    for k in [6usize, 9, 12] {
        let reference = agglomerate(&features, Linkage::Ward).cut(k);
        let r = icn_cluster::bootstrap_stability(
            &features,
            &reference,
            k,
            Linkage::Ward,
            0.7,
            8,
            0xB007,
        );
        b2b.row(vec![
            k.to_string(),
            format!("{:.3}", r.mean_ari()),
            format!("{:.3}", r.min_ari()),
        ]);
    }
    println!("{}", b2b.render());

    // ---------- B5: SHAP estimator agreement ----------
    println!("B5 — TreeSHAP vs KernelSHAP (one member of each of 3 clusters):");
    let forest = RandomForest::fit(
        &ts,
        &ForestConfig {
            n_trees: 50,
            seed: 7,
            ..Default::default()
        },
    );
    let mut b5 = Table::new(vec![
        "cluster",
        "sample",
        "top-feature match",
        "sign agreement (top5)",
    ]);
    for class in 0..3usize {
        let Some(idx) = ward_labels.iter().position(|&l| l == class) else {
            continue;
        };
        let x = features.row(idx);
        let tree_phi = forest_shap(&forest, x);
        let tree_class: Vec<f64> = tree_phi.iter().map(|p| p[class]).collect();
        let model = |v: &[f64]| forest.predict_proba(v)[class];
        let (kern_phi, _) = kernel_shap(
            &model,
            x,
            &features,
            &KernelShapConfig {
                n_samples: 1500,
                max_background: 16,
                seed: 11,
            },
        );
        let abs_tree: Vec<f64> = tree_class.iter().map(|v| v.abs()).collect();
        let abs_kern: Vec<f64> = kern_phi.iter().map(|v| v.abs()).collect();
        let top_tree = icn_stats::rank::argmax(&abs_tree);
        let top_kern = icn_stats::rank::argmax(&abs_kern);
        let top5 = icn_stats::rank::top_k(&abs_tree, 5);
        let signs = top5
            .iter()
            .filter(|&&f| {
                tree_class[f].signum() == kern_phi[f].signum() || kern_phi[f].abs() < 1e-4
            })
            .count();
        b5.row(vec![
            class.to_string(),
            idx.to_string(),
            if top_tree == top_kern {
                "yes".into()
            } else {
                format!(
                    "{} vs {}",
                    ds.services[top_tree].name, ds.services[top_kern].name
                )
            },
            format!("{signs}/5"),
        ]);
    }
    println!("{}", b5.render());
}
