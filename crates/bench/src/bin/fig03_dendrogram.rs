//! Figure 3 — the dendrogram with k = 6 and k = 9 thresholds.
//!
//! Regenerates the hierarchy view: the top of the merge tree over the nine
//! clusters, the distance bands separating the k = 6 and k = 9 cuts, the
//! per-cluster antenna counts reported along the figure's x-axis, the
//! three-group super-structure and the k = 9 → k = 6 consolidation the
//! paper describes (orange group collapses, clusters 6 and 8 merge).
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig03_dendrogram [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_report::Table;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 3 — dendrogram, thresholds, groups", &ds);
    let st = study(&ds, &opts);

    // Distance thresholds for the two cuts.
    let (lo9, hi9) = st.history.cut_band(9);
    let (lo6, hi6) = st.history.cut_band(6);
    println!("k = 9 threshold band: ({lo9:.4}, {hi9:.4})");
    println!("k = 6 threshold band: ({lo6:.4}, {hi6:.4})");

    // Dendrogram fidelity: cophenetic correlation against the RSCA
    // geometry (CPCC; 1.0 = the tree perfectly preserves distances).
    let cond = icn_cluster::Condensed::from_rows(&st.rsca, icn_stats::Metric::Euclidean);
    println!(
        "cophenetic correlation (CPCC): {:.4}\n",
        icn_cluster::cophenetic_correlation(&st.history, &cond)
    );

    // Cluster sizes along the x-axis.
    let mut t = Table::new(vec!["cluster", "antennas"]);
    for (c, size) in st.cluster_sizes().iter().enumerate() {
        t.row(vec![c.to_string(), size.to_string()]);
    }
    println!("{}", t.render());

    // The top of the tree over the 9 cluster roots.
    println!("{}", icn_report::dendro::render_top(&st.dendrogram, 9));

    // Super-group structure at k = 3 (the paper's orange/green/red).
    let coarse3 = st.dendrogram.cut(3);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 3];
    for c in 0..9 {
        // Representative antenna of cluster c.
        let pos = st.labels.iter().position(|&l| l == c).expect("non-empty");
        groups[coarse3[pos]].push(c);
    }
    println!("three super-groups (k = 3 cut): {groups:?}");

    // k = 9 -> 6 consolidation.
    let mut consolidated: Vec<Vec<usize>> = vec![Vec::new(); 6];
    for (fine, &coarse) in st.consolidation.iter().enumerate() {
        consolidated[coarse].push(fine);
    }
    println!("k = 9 -> k = 6 consolidation (coarse cluster <- fine clusters):");
    for (coarse, fines) in consolidated.iter().enumerate() {
        println!("  coarse {coarse} <- {fines:?}");
    }
    println!(
        "(paper: moving to k = 6 consolidates the orange group into one cluster \
         and merges clusters 6 and 8)"
    );
}
