//! Figure 10 (a–i) — per-cluster temporal heatmaps, 04–24 Jan 2023.
//!
//! Regenerates the normalised-median hourly-traffic heatmaps per cluster
//! over the paper's 21-day January window, plus the quantitative shape
//! statistics the prose reads off them: commute-hour bimodality for the
//! orange group, the 19 January strike collapse (milder for provincial
//! metros), event burstiness for the green group, diurnal 10–20 h activity
//! for the red group with workspaces idle on weekends.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig10_cluster_temporal [-- --scale 0.25]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_core::cluster_heatmap;
use icn_report::Table;
use icn_synth::StudyCalendar;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner(
        "Figure 10 — cluster temporal heatmaps (04–24 Jan 2023)",
        &ds,
    );
    let st = study(&ds, &opts);
    let window = StudyCalendar::temporal_window();

    let mut stats = Table::new(vec![
        "cluster",
        "dominant env",
        "commute ratio",
        "weekend ratio",
        "strike dip",
        "burstiness",
        "ACF-24h",
        "ACF-168h",
    ]);

    for c in 0..st.config.k {
        let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = st
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| st.labels[*pos] == c)
            .map(|(_, &row)| (&ds.antennas[row], ds.indoor_totals.row(row)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = cluster_heatmap(&members, &rows, &ds.services, 65, &window, ds.root_rng());
        let (env, _) = st.crosstab.dominant_environment(c);
        let rhythm = hm.rhythm();
        stats.row(vec![
            c.to_string(),
            env.label().to_string(),
            format!("{:.2}", hm.commute_ratio()),
            format!("{:.2}", hm.weekend_ratio()),
            format!("{:.2}", hm.strike_dip()),
            format!("{:.1}", hm.burstiness()),
            format!("{:.2}", rhythm.daily),
            format!("{:.2}", rhythm.weekly),
        ]);

        println!("cluster {c} ({}, {} antennas):", env.label(), members.len());
        let labels: Vec<String> = (0..hm.values.len())
            .map(|d| {
                let date = window.date(d);
                let mark = if date == StudyCalendar::strike_day() {
                    "*"
                } else if date.weekday().is_weekend() {
                    "w"
                } else {
                    " "
                };
                format!("{}{}", date.iso(), mark)
            })
            .collect();
        print!(
            "{}",
            icn_report::heatmap::render_sequential(&hm.values, Some(&labels))
        );
        println!();
    }

    println!("shape statistics ('*' = strike day, 'w' = weekend rows above):");
    println!("{}", stats.render());
    println!(
        "expected shapes (paper): orange commute ratio >> 1 & strike dip << 1; green \
         burstiness >> red & low ACF-24 (sporadic, non-canonical bursts); cluster-3 \
         weekend ratio ~ 0; red commute ratio ~ 1 with strong daily rhythm."
    );
}
