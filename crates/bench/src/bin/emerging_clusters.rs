//! Roadmap experiment (paper §7): detecting an emerging service cluster.
//!
//! The paper predicts that future ICN traffic (industrial IoT, AR,
//! self-orchestrated environments) will create *additional* clusters that
//! MNOs must provision for. We simulate that future: a 10th IIoT/AR-style
//! usage profile is injected into the nationwide campaign, and the paper's
//! own k-selection machinery (silhouette + Dunn drop detection) is run
//! before and after. The harness verifies the drop moves from k = 9 to
//! k = 10 and that the new cluster is recovered with high purity.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin emerging_clusters [-- --scale 0.25]
//! ```

use icn_bench::parse_opts;
use icn_cluster::{adjusted_rand_index, agglomerate_condensed, sweep_k, Condensed, Linkage};
use icn_core::{filter_dead_rows, rsca};
use icn_report::Table;
use icn_stats::Metric;
use icn_synth::emerging::{inject_emerging, EMERGING_LABEL};
use icn_synth::{Dataset, SynthConfig};

fn main() {
    let opts = parse_opts();
    let base = Dataset::generate(
        SynthConfig::paper()
            .with_scale(opts.scale)
            .with_seed(opts.seed),
    );
    // Inject ~4% of the population as emerging antennas.
    let n_inject = (base.num_antennas() / 25).max(8);
    let emerging = inject_emerging(&base, n_inject, 0xE317);
    println!(
        "=== Emerging-cluster detection (§7 roadmap) ===\n\
         base population {} + {} injected IIoT/AR antennas\n",
        base.num_antennas(),
        n_inject
    );

    let run_sweep = |ds: &Dataset, label: &str| -> Vec<icn_cluster::KQuality> {
        let (t, _) = filter_dead_rows(&ds.indoor_totals);
        let features = rsca(&t);
        let cond_w = Condensed::from_rows(&features, Linkage::Ward.base_metric());
        let history = agglomerate_condensed(&cond_w, Linkage::Ward);
        let cond = Condensed::from_rows(&features, Metric::Euclidean);
        let sweep = sweep_k(&history, &cond, 2..=14);
        let mut table = Table::new(vec!["k", "silhouette", "dunn"]);
        for q in &sweep {
            table.row(vec![
                q.k.to_string(),
                format!("{:.4}", q.silhouette),
                format!("{:.5}", q.dunn),
            ]);
        }
        println!("{label}:\n{}", table.render());
        sweep
    };

    let _before = run_sweep(&base, "quality indices BEFORE injection");
    let after = run_sweep(&emerging.dataset, "quality indices AFTER injection");

    // Recovery of the injected cluster at k = 10.
    let (t, live_rows) = filter_dead_rows(&emerging.dataset.indoor_totals);
    let features = rsca(&t);
    let cond_w = Condensed::from_rows(&features, Linkage::Ward.base_metric());
    let history = agglomerate_condensed(&cond_w, Linkage::Ward);
    let labels10 = history.cut(10);
    let truth: Vec<usize> = live_rows.iter().map(|&i| emerging.labels[i]).collect();
    let ari = adjusted_rand_index(&labels10, &truth);

    // Which discovered cluster captures the injected antennas?
    let mut capture = [0usize; 10];
    let mut injected_total = 0usize;
    for (pos, &t_label) in truth.iter().enumerate() {
        if t_label == EMERGING_LABEL {
            capture[labels10[pos]] += 1;
            injected_total += 1;
        }
    }
    let best = icn_stats::rank::argmax(&capture.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let captured = capture[best];
    // Purity of that cluster.
    let cluster_size = labels10.iter().filter(|&&l| l == best).count();
    println!(
        "k = 10 cut: ARI vs 10-class truth {ari:.3}; emerging antennas concentrate in \
         discovered cluster {best} ({captured}/{injected_total} captured; cluster purity \
         {:.0}%)",
        100.0 * captured as f64 / cluster_size.max(1) as f64
    );

    // Does the k=10 step look better after injection?
    let q9 = after.iter().find(|q| q.k == 9).expect("k=9 in sweep");
    let q10 = after.iter().find(|q| q.k == 10).expect("k=10 in sweep");
    println!(
        "after injection: silhouette k=9 {:.4} vs k=10 {:.4} (the tenth structure is real)",
        q9.silhouette, q10.silhouette
    );
}
