//! Figure 9 — cluster distribution of neighbouring outdoor antennas.
//!
//! Regenerates the outdoor classification: RCA of each outdoor antenna
//! referenced against indoor usage (Eq. 5), symmetrised, and classified by
//! the surrogate forest. The paper reports ~70 % of ~20k outdoor antennas
//! in the general-use cluster 1 with transit/stadium/workspace clusters
//! nearly absent; we print the distribution, the entropy comparison and
//! the same concentration statistics.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig09_outdoor [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_core::{distribution_entropy, label_distribution};
use icn_report::Table;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner(
        "Figure 9 — outdoor antennas through the indoor surrogate",
        &ds,
    );
    let st = study(&ds, &opts);

    let indoor_dist = label_distribution(&st.labels, st.config.k);
    let mut t = Table::new(vec![
        "cluster",
        "dominant env",
        "indoor share",
        "outdoor share",
    ]);
    for c in 0..st.config.k {
        let (env, _) = st.crosstab.dominant_environment(c);
        t.row(vec![
            c.to_string(),
            env.label().to_string(),
            format!("{:.1}%", 100.0 * indoor_dist[c]),
            format!("{:.1}%", 100.0 * st.outdoor.distribution[c]),
        ]);
    }
    println!("{}", t.render());

    let (dom, share) = st.outdoor.dominant;
    let (dom_env, _) = st.crosstab.dominant_environment(dom);
    println!(
        "{:.1}% of {} outdoor antennas land in cluster {dom} (dominant env: {}) — \
         the paper reports ~70% in its general-use cluster 1",
        100.0 * share,
        st.outdoor.predicted.len(),
        dom_env.label()
    );
    println!(
        "diversity entropy: indoor {:.3} nats, outdoor {:.3} nats",
        distribution_entropy(&indoor_dist),
        distribution_entropy(&st.outdoor.distribution)
    );
}
