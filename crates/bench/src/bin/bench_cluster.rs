//! Stage-2 clustering bench: sweeps the exact Ward path over population
//! scales and worker-thread counts, then exercises the sampled scalable
//! path on a synthetic large-N fixture and records exact-vs-sampled
//! agreement (ARI) at small scales.
//!
//! ```text
//! cargo run --release --bin bench_cluster -- \
//!     --scales 0.05,0.25,1.0 --threads 1,max --metrics-out BENCH_pr6.json
//! ```
//!
//! Only stages 1–2 of the pipeline run (the surrogate/SHAP stages are not
//! relevant here), so a full sweep completes in seconds. Every
//! configuration is measured `--repeat` times (default 3) after one
//! unmeasured warm-up, and the fastest repeat wins. The exported report
//! is the best snapshot of the **final** exact configuration (largest
//! scale, highest thread count — `stage2_cluster` is directly comparable
//! to `BENCH_pr5.json`) overlaid with the large-N sampled run and the
//! agreement gauges:
//!
//! * `stage2_cluster` span tree — the exact path at the last scale.
//! * `stage2_sampled_large_n` span tree — sampled Ward on the synthetic
//!   fixture (`--large-n`, default 50_000 rows).
//! * gauges `cluster.sampled_ari_scale005` / `..._scale02` — sampled vs
//!   exact Ward label agreement at scales 0.05 / 0.2.
//! * gauges `cluster.large_n_rows`, `cluster.large_n_sample`,
//!   `cluster.large_n_condensed_bytes`, `cluster.budget_bytes`.

use icn_cluster::{
    adjusted_rand_index, agglomerate_condensed, sampled_ward, sweep_k, Condensed, Dendrogram,
    Linkage, SampledWardConfig,
};
use icn_core::{filter_dead_rows, rsca, StudyConfig};
use icn_obs::BenchReport;
use icn_stats::{Matrix, Rng};
use icn_synth::{Dataset, SynthConfig};

// Count allocations so `--metrics-out` reports carry the `icn-obs/v3`
// memory section (inert single-branch overhead while metering is off).
#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

struct ClusterBenchOpts {
    scales: Vec<f64>,
    threads: Vec<Option<usize>>, // None = hardware max
    seed: u64,
    large_n: usize,
    budget_mb: usize,
    repeat: usize,
    metrics_out: Option<String>,
}

fn parse_args() -> ClusterBenchOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = ClusterBenchOpts {
        scales: vec![0.05, 0.25, 1.0],
        threads: vec![Some(1), None],
        seed: SynthConfig::default().seed,
        large_n: 50_000,
        budget_mb: StudyConfig::paper().cluster_budget_mb,
        repeat: 3,
        metrics_out: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scales" => {
                if let Some(v) = args.get(i + 1) {
                    opts.scales = v.split(',').filter_map(|s| s.parse().ok()).collect();
                }
                i += 2;
            }
            "--threads" => {
                if let Some(v) = args.get(i + 1) {
                    opts.threads = v
                        .split(',')
                        .map(|s| {
                            if s == "max" {
                                None
                            } else {
                                Some(s.parse().unwrap_or(1).max(1))
                            }
                        })
                        .collect();
                }
                i += 2;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
                i += 2;
            }
            "--large-n" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.large_n = v;
                }
                i += 2;
            }
            "--budget-mb" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.budget_mb = v;
                }
                i += 2;
            }
            "--repeat" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    opts.repeat = v.max(1);
                }
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = args.get(i + 1).cloned();
                i += 2;
            }
            _ => i += 1,
        }
    }
    assert!(!opts.scales.is_empty(), "bench_cluster: no scales given");
    assert!(
        !opts.threads.is_empty(),
        "bench_cluster: no thread counts given"
    );
    opts
}

/// Stage 1 + RSCA for a scaled synthetic population.
fn rsca_at(scale: f64, seed: u64) -> Matrix {
    let ds = Dataset::generate(SynthConfig::paper().with_scale(scale).with_seed(seed));
    let (t_live, _) = filter_dead_rows(&ds.indoor_totals);
    rsca(&t_live)
}

/// The exact stage-2 path, mirroring the pipeline's span layout.
fn run_exact_stage2(rsca_m: &Matrix, config: &StudyConfig) -> Vec<usize> {
    let mut span = icn_obs::Span::enter("stage2_cluster");
    span.attr("antennas", rsca_m.rows() as u64);
    let cond = Condensed::from_rows(rsca_m, Linkage::Ward.base_metric());
    let history = agglomerate_condensed(&cond, Linkage::Ward);
    let dendrogram = Dendrogram::from_history(&history);
    let _k_sweep = sweep_k(
        &history,
        &cond.sqrt_values(),
        config.k_sweep_lo..=config.k_sweep_hi.min(history.n - 1),
    );
    let labels = history.cut(config.k);
    let _ = dendrogram.consolidation(config.k, config.k_coarse);
    labels
}

/// A synthetic large-N fixture: `k` well-separated archetype centroids in
/// the RSCA-like unit simplex geometry, Gaussian spread, seeded.
fn large_fixture(n: usize, dims: usize, k: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dims).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centers[i % k];
            c.iter().map(|&v| rng.normal(v, 0.08)).collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

fn span_ms(report: &BenchReport, path: &str) -> f64 {
    report
        .spans
        .get(path)
        .map_or(0.0, |&(_, wall)| wall.as_secs_f64() * 1e3)
}

/// Overlays `extra` (the agreement + large-N phase) onto `base` (the best
/// exact-sweep repeat) so one self-contained report can be exported. Both
/// snapshots come from their own registry sessions; name collisions (the
/// condensed-build gauges both phases set) resolve to the later phase,
/// matching the last-write-wins the registry itself would have applied
/// had the phases shared a session.
fn overlay(base: &mut icn_obs::Snapshot, extra: icn_obs::Snapshot) {
    base.counters.extend(extra.counters);
    base.gauges.extend(extra.gauges);
    base.histograms.extend(extra.histograms);
    base.spans.extend(extra.spans);
}

fn main() {
    let opts = parse_args();
    let obs = icn_obs::global();
    obs.enable();
    let config = StudyConfig::paper();

    // Unmeasured warm-up at the largest scale: the first big run in a
    // process pays for faulting in the O(N²) working set (fresh kernel
    // pages); afterwards the allocator reuses the arena. Without this the
    // first measured configuration absorbs several seconds of one-off
    // page-fault cost that no steady-state run ever sees.
    {
        let warm = rsca_at(*opts.scales.last().unwrap(), opts.seed);
        obs.disable();
        let _ = run_exact_stage2(&warm, &config);
        obs.enable();
        obs.reset();
    }

    println!("=== bench cluster: exact stage-2 scale x thread sweep ===");
    println!(
        "{:>7} {:>7} {:>9} {:>11} {:>12} {:>13} {:>11}",
        "scale", "threads", "antennas", "stage2_ms", "condensed_ms", "agglomerate_ms", "sweep_ms"
    );

    let last_scale = *opts.scales.last().unwrap();
    // Thread count is the outer dimension so the final configuration is
    // the largest scale at the highest thread count. Every configuration
    // runs `--repeat` times and the fastest repeat is what gets printed
    // and (for the final configuration) exported — the box this runs on
    // shares cores, and best-of-R is the standard way to measure the code
    // rather than the neighbours.
    let mut best_final: Option<icn_obs::Snapshot> = None;
    for (ti, &threads) in opts.threads.iter().enumerate() {
        match threads {
            Some(t) => std::env::set_var("ICN_THREADS", t.to_string()),
            None => std::env::remove_var("ICN_THREADS"),
        }
        for (si, &scale) in opts.scales.iter().enumerate() {
            let rsca_m = rsca_at(scale, opts.seed);
            let n = rsca_m.rows();
            let mut best: Option<(f64, icn_obs::Snapshot)> = None;
            for _ in 0..opts.repeat {
                obs.reset();
                let _labels = run_exact_stage2(&rsca_m, &config);
                let snap = obs.snapshot();
                let wall = snap
                    .spans
                    .get("stage2_cluster")
                    .map_or(f64::INFINITY, |&(_, w)| w.as_secs_f64());
                if best.as_ref().is_none_or(|(bw, _)| wall < *bw) {
                    best = Some((wall, snap));
                }
            }
            let (_, snap) = best.unwrap();
            let report = BenchReport::build(&snap, "bench_cluster", scale);
            println!(
                "{:>7.2} {:>7} {:>9} {:>11.1} {:>12.1} {:>13.1} {:>11.1}",
                scale,
                report.env.threads,
                n,
                span_ms(&report, "stage2_cluster"),
                span_ms(&report, "stage2_cluster/condensed"),
                span_ms(&report, "stage2_cluster/agglomerate"),
                span_ms(&report, "stage2_cluster")
                    - span_ms(&report, "stage2_cluster/condensed")
                    - span_ms(&report, "stage2_cluster/agglomerate"),
            );
            if ti == opts.threads.len() - 1 && si == opts.scales.len() - 1 {
                best_final = Some(snap);
            }
        }
    }
    std::env::remove_var("ICN_THREADS");
    obs.reset();

    // Exact-vs-sampled agreement at small scales (the satellite ARI gate).
    // One parent span keeps the phase's inner spans (generate, condensed,
    // agglomerate, sampled_ward) out of the report's top-level stages.
    println!("=== sampled vs exact Ward agreement ===");
    let agreement_span = icn_obs::Span::enter("sampled_agreement");
    for (tag, scale) in [("scale005", 0.05), ("scale02", 0.2)] {
        let rsca_m = rsca_at(scale, opts.seed);
        let n = rsca_m.rows();
        let exact = agglomerate_condensed(
            &Condensed::from_rows(&rsca_m, Linkage::Ward.base_metric()),
            Linkage::Ward,
        )
        .cut(config.k);
        let sw = sampled_ward(
            &rsca_m,
            config.k,
            &SampledWardConfig {
                sample: n * 3 / 5,
                seed: opts.seed,
                refine_iters: 2,
            },
        );
        let ari = adjusted_rand_index(&exact, &sw.labels);
        obs.set_gauge(&format!("cluster.sampled_ari_{tag}"), ari);
        println!(
            "scale {scale:>5}: n={n:>5} sample={} ARI={ari:.4}",
            sw.sample.len()
        );
    }
    drop(agreement_span);

    // Sampled Ward on the synthetic large-N fixture, within the budget.
    let budget_bytes = opts.budget_mb * 1024 * 1024;
    let fixture = large_fixture(opts.large_n, 73, config.k, opts.seed);
    let sample = icn_cluster::max_sample_for_budget(budget_bytes).min(opts.large_n);
    let t0 = std::time::Instant::now();
    let sw = {
        let mut span = icn_obs::Span::enter("stage2_sampled_large_n");
        span.attr("rows", opts.large_n as u64);
        sampled_ward(
            &fixture,
            config.k,
            &SampledWardConfig {
                sample,
                seed: opts.seed,
                refine_iters: 2,
            },
        )
    };
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    obs.set_gauge("cluster.large_n_rows", opts.large_n as f64);
    obs.set_gauge("cluster.large_n_sample", sw.sample.len() as f64);
    icn_obs::gauge_bytes("cluster.large_n_condensed_bytes", sw.condensed_bytes);
    icn_obs::gauge_bytes("cluster.budget_bytes", budget_bytes);
    println!(
        "=== sampled large-N: n={} sample={} condensed={:.1} MB (budget {} MB) wall={wall:.1} ms ===",
        opts.large_n,
        sw.sample.len(),
        sw.condensed_bytes as f64 / (1024.0 * 1024.0),
        opts.budget_mb,
    );
    assert!(
        sw.condensed_bytes <= budget_bytes,
        "sampled path exceeded its memory budget"
    );

    if let Some(path) = &opts.metrics_out {
        // Export = fastest repeat of the final exact configuration, with
        // the agreement gauges and the sampled large-N phase overlaid.
        let mut snap = best_final.expect("sweep ran at least one configuration");
        overlay(&mut snap, obs.snapshot());
        let report = BenchReport::build(&snap, "bench_cluster", last_scale);
        match report.write_to_file(path) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => {
                eprintln!("failed to write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
