//! Figure 11 (a–i) — per-service temporal heatmaps by dendrogram group.
//!
//! Regenerates the nine panels of Figure 11: for each super-group the
//! paper selects three SHAP-important services and plots their normalised
//! median traffic — orange: Spotify / Twitter / transportation websites;
//! green: Netflix / Waze / Snapchat; red: Microsoft Teams / Netflix / Waze.
//! We print the same heatmaps plus the shape statistics the prose reads
//! off them (morning-commute Spotify peaks, Waze lagging event nights,
//! office-hour Teams, hotel-night vs office-lunch Netflix).
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig11_service_temporal [-- --scale 0.25]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_core::service_heatmap;
use icn_synth::services::index_of;
use icn_synth::StudyCalendar;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 11 — per-service temporal heatmaps", &ds);
    let st = study(&ds, &opts);
    let window = StudyCalendar::temporal_window();

    // Order clusters by super-group, as in the paper's panel layout.
    let coarse3 = st.dendrogram.cut(3);
    let group_of = |c: usize| {
        let pos = st.labels.iter().position(|&l| l == c).expect("non-empty");
        coarse3[pos]
    };
    // Identify which super-group is which by its dominant environments.
    let mut commuter_group = 0usize;
    let mut event_group = 0usize;
    let mut daytime_group = 0usize;
    for g in 0..3 {
        let clusters: Vec<usize> = (0..9).filter(|&c| group_of(c) == g).collect();
        let metro_mass: usize = clusters
            .iter()
            .map(|&c| st.crosstab.counts[c][icn_core::env_index(icn_synth::Environment::Metro)])
            .sum();
        let stadium_mass: usize = clusters
            .iter()
            .map(|&c| st.crosstab.counts[c][icn_core::env_index(icn_synth::Environment::Stadium)])
            .sum();
        let work_mass: usize = clusters
            .iter()
            .map(|&c| st.crosstab.counts[c][icn_core::env_index(icn_synth::Environment::Workspace)])
            .sum();
        let max = metro_mass.max(stadium_mass).max(work_mass);
        if max == metro_mass {
            commuter_group = g;
        } else if max == stadium_mass {
            event_group = g;
        } else {
            daytime_group = g;
        }
    }
    let _ = daytime_group;

    let panels: Vec<(&str, &str, usize)> = vec![
        ("(a)", "Spotify", commuter_group),
        ("(b)", "Twitter", commuter_group),
        ("(c)", "Transportation Websites", commuter_group),
        ("(d)", "Netflix", event_group),
        ("(e)", "Waze", event_group),
        ("(f)", "Snapchat", event_group),
        ("(g)", "Microsoft Teams", daytime_group),
        ("(h)", "Netflix", daytime_group),
        ("(i)", "Waze", daytime_group),
    ];

    for (tag, svc_name, g) in panels {
        let j = index_of(&ds.services, svc_name).expect("service in catalog");
        // Members of all clusters of the super-group.
        let (members, totals): (Vec<&icn_synth::Antenna>, Vec<f64>) = st
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| group_of(st.labels[*pos]) == g)
            .map(|(_, &row)| (&ds.antennas[row], ds.indoor_totals.get(row, j)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = service_heatmap(
            &members,
            &totals,
            &ds.services[j],
            65,
            &window,
            ds.root_rng(),
        );
        println!(
            "{tag} {svc_name}, super-group {g} ({} antennas) — commute ratio {:.2}, \
             weekend ratio {:.2}, strike dip {:.2}, burstiness {:.1}",
            members.len(),
            hm.commute_ratio(),
            hm.weekend_ratio(),
            hm.strike_dip(),
            hm.burstiness()
        );
        let labels: Vec<String> = (0..hm.values.len()).map(|d| window.date(d).iso()).collect();
        print!(
            "{}",
            icn_report::heatmap::render_sequential(&hm.values, Some(&labels))
        );
        println!();
    }
}
