//! Figure 8 (a–c) — cluster distributions per indoor environment type.
//!
//! Regenerates the three panels: (a) airports, tunnels, commercial centers;
//! (b) hotels, hospitals, public buildings; (c) stadiums, expo centers,
//! workplaces — each environment's antennas broken down by cluster.
//!
//! ```sh
//! cargo run --release -p icn-bench --bin fig08_env_clusters [-- --scale 1.0]
//! ```

use icn_bench::{banner, dataset, parse_opts, study};
use icn_report::Table;
use icn_synth::Environment;

fn main() {
    let opts = parse_opts();
    let ds = dataset(&opts);
    banner("Figure 8 — cluster distribution per environment", &ds);
    let st = study(&ds, &opts);

    let panels: [(&str, &[Environment]); 3] = [
        (
            "(a) airports, tunnels, commercial centers",
            &[
                Environment::Airport,
                Environment::Tunnel,
                Environment::CommercialCenter,
            ],
        ),
        (
            "(b) hotels, hospitals, public buildings",
            &[
                Environment::Hotel,
                Environment::Hospital,
                Environment::PublicBuilding,
            ],
        ),
        (
            "(c) stadiums, expo centers, workplaces",
            &[
                Environment::Stadium,
                Environment::ExpoCenter,
                Environment::Workspace,
            ],
        ),
    ];

    for (title, envs) in panels {
        println!("--- {title} ---");
        let mut header: Vec<String> = vec!["environment".into(), "n".into()];
        header.extend((0..9).map(|c| format!("c{c}")));
        let mut t = Table::new(header);
        for &env in envs {
            let dist = st.crosstab.env_distribution(env);
            let e_idx = icn_core::env_index(env);
            let mut row = vec![
                env.label().to_string(),
                st.crosstab.env_sizes[e_idx].to_string(),
            ];
            row.extend(dist.iter().map(|&f| format!("{:.0}%", 100.0 * f)));
            t.row(row);
        }
        println!("{}", t.render());
    }
}
