//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share a common CLI (`--scale <f64>` to shrink the antenna
//! population, `--seed <u64>`, `--sweep` to enable the Figure 2 sweep,
//! `--metrics-out <path>` to export an [`icn_obs::BenchReport`]) and
//! common dataset/study runners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icn_core::{IcnStudy, StudyConfig};
use icn_obs::BenchReport;
use icn_synth::{Dataset, SynthConfig};

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Population scale (1.0 = the paper's 4,762 antennas).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Run the (slow) Figure 2 sweep.
    pub sweep: bool,
    /// Destination for the machine-readable metrics report, if any.
    pub metrics_out: Option<String>,
    /// Destination for the Chrome trace-event export, if any.
    pub trace_out: Option<String>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: 1.0,
            seed: SynthConfig::default().seed,
            sweep: false,
            metrics_out: None,
            trace_out: None,
        }
    }
}

/// Parses `--scale`, `--seed`, `--sweep` and `--metrics-out` from
/// `std::env::args`, and enables the global [`icn_obs`] registry when a
/// metrics destination was requested (so the whole run is traced).
pub fn parse_opts() -> HarnessOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = HarnessOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.scale = v;
                }
                i += 2;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
                i += 2;
            }
            "--sweep" => {
                opts.sweep = true;
                i += 1;
            }
            "--metrics-out" => {
                opts.metrics_out = args.get(i + 1).cloned();
                i += 2;
            }
            "--trace-out" => {
                opts.trace_out = args.get(i + 1).cloned();
                i += 2;
            }
            _ => i += 1,
        }
    }
    if opts.metrics_out.is_some() || opts.trace_out.is_some() {
        icn_obs::global().enable();
    }
    opts
}

/// Writes the accumulated metrics to `opts.metrics_out` and/or the
/// Chrome trace to `opts.trace_out` (no-op when neither flag was given).
/// Call once, at the end of the binary.
pub fn write_metrics(opts: &HarnessOpts, run_id: &str) {
    if opts.metrics_out.is_none() && opts.trace_out.is_none() {
        return;
    }
    let snap = icn_obs::global().snapshot();
    if let Some(path) = &opts.metrics_out {
        let report = BenchReport::build(&snap, run_id, opts.scale);
        match report.write_to_file(path) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => {
                eprintln!("failed to write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        match icn_obs::write_chrome_trace(&snap, path) {
            Ok(()) => eprintln!("chrome trace written to {path}"),
            Err(e) => {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Generates the dataset for the harness options.
pub fn dataset(opts: &HarnessOpts) -> Dataset {
    Dataset::generate(
        SynthConfig::paper()
            .with_scale(opts.scale)
            .with_seed(opts.seed),
    )
}

/// Runs the full study (with or without the k-sweep).
pub fn study(ds: &Dataset, opts: &HarnessOpts) -> IcnStudy {
    let config = StudyConfig {
        run_k_sweep: opts.sweep,
        ..StudyConfig::paper()
    };
    IcnStudy::run(ds, config)
}

/// Prints the standard harness banner.
pub fn banner(what: &str, ds: &Dataset) {
    println!(
        "=== {what} ===\n(scale {:.3}: {} indoor antennas, {} services, {} outdoor)\n",
        ds.config.scale,
        ds.num_antennas(),
        ds.num_services(),
        ds.outdoor.len()
    );
}

/// Minimal manual benchmarking loop used by the `benches/` harnesses
/// (`harness = false`): runs `f` a fixed number of times and reports
/// min / median wall time. No statistics beyond that — the goal is
/// regression *visibility*, not criterion-grade inference.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Times `iters` runs of `f` (plus one untimed warm-up) and prints
    /// `name: median <m> min <n>`; returns the median.
    pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> Duration {
        assert!(iters >= 1, "timing::bench: need at least one iteration");
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{name}: median {:.3} ms, min {:.3} ms ({iters} iters)",
            median.as_secs_f64() * 1e3,
            samples[0].as_secs_f64() * 1e3
        );
        median
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let o = HarnessOpts::default();
        assert_eq!(o.scale, 1.0);
        assert!(!o.sweep);
    }

    #[test]
    fn small_dataset_and_study_roundtrip() {
        let opts = HarnessOpts {
            scale: 0.04,
            ..HarnessOpts::default()
        };
        let ds = dataset(&opts);
        assert!(ds.num_antennas() > 50);
        let st = study(&ds, &opts);
        assert_eq!(st.cluster_sizes().len(), 9);
    }
}
