//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share a common CLI (`--scale <f64>` to shrink the antenna
//! population, `--seed <u64>`, `--sweep` to enable the Figure 2 sweep) and
//! common dataset/study runners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icn_core::{IcnStudy, StudyConfig};
use icn_synth::{Dataset, SynthConfig};

/// Parsed harness options.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Population scale (1.0 = the paper's 4,762 antennas).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Run the (slow) Figure 2 sweep.
    pub sweep: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: 1.0,
            seed: SynthConfig::default().seed,
            sweep: false,
        }
    }
}

/// Parses `--scale`, `--seed` and `--sweep` from `std::env::args`.
pub fn parse_opts() -> HarnessOpts {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = HarnessOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.scale = v;
                }
                i += 2;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                }
                i += 2;
            }
            "--sweep" => {
                opts.sweep = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    opts
}

/// Generates the dataset for the harness options.
pub fn dataset(opts: &HarnessOpts) -> Dataset {
    Dataset::generate(
        SynthConfig::paper()
            .with_scale(opts.scale)
            .with_seed(opts.seed),
    )
}

/// Runs the full study (with or without the k-sweep).
pub fn study(ds: &Dataset, opts: &HarnessOpts) -> IcnStudy {
    let config = StudyConfig {
        run_k_sweep: opts.sweep,
        ..StudyConfig::paper()
    };
    IcnStudy::run(ds, config)
}

/// Prints the standard harness banner.
pub fn banner(what: &str, ds: &Dataset) {
    println!(
        "=== {what} ===\n(scale {:.3}: {} indoor antennas, {} services, {} outdoor)\n",
        ds.config.scale,
        ds.num_antennas(),
        ds.num_services(),
        ds.outdoor.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let o = HarnessOpts::default();
        assert_eq!(o.scale, 1.0);
        assert!(!o.sweep);
    }

    #[test]
    fn small_dataset_and_study_roundtrip() {
        let opts = HarnessOpts {
            scale: 0.04,
            ..HarnessOpts::default()
        };
        let ds = dataset(&opts);
        assert!(ds.num_antennas() > 50);
        let st = study(&ds, &opts);
        assert_eq!(st.cluster_sizes().len(), 9);
    }
}
