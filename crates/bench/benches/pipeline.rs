//! Criterion benches of the end-to-end pipeline (B6 scale sweep): study
//! runtime vs population size, and the k-sweep (Figure 2) at one scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icn_core::{IcnStudy, StudyConfig};
use icn_synth::{Dataset, SynthConfig};

fn pipeline_scale_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("b6_pipeline_scale_sweep");
    g.sample_size(10);
    for &scale in &[0.05, 0.1, 0.2] {
        let ds = Dataset::generate(SynthConfig::paper().with_scale(scale));
        g.bench_with_input(
            BenchmarkId::from_parameter(ds.num_antennas()),
            &ds,
            |b, ds| {
                b.iter(|| IcnStudy::run(ds, StudyConfig::fast()));
            },
        );
    }
    g.finish();
}

fn pipeline_with_sweep(c: &mut Criterion) {
    let ds = Dataset::generate(SynthConfig::paper().with_scale(0.1));
    let mut g = c.benchmark_group("fig02_full_study_with_k_sweep");
    g.sample_size(10);
    g.bench_function("k_sweep_2_to_15", |b| {
        b.iter(|| {
            IcnStudy::run(
                &ds,
                StudyConfig {
                    run_k_sweep: true,
                    n_trees: 30,
                    ..StudyConfig::paper()
                },
            )
        });
    });
    g.finish();
}

criterion_group!(benches, pipeline_scale_sweep, pipeline_with_sweep);
criterion_main!(benches);
