//! Benches of the end-to-end pipeline (B6 scale sweep): study runtime vs
//! population size, and the k-sweep (Figure 2) at one scale. Manual
//! timing loops (`harness = false`).
//!
//! ```sh
//! cargo bench -p icn-bench --bench pipeline
//! ```

use icn_bench::timing::bench;
use icn_core::{IcnStudy, StudyConfig};
use icn_synth::{Dataset, SynthConfig};

fn pipeline_scale_sweep() {
    println!("== b6_pipeline_scale_sweep ==");
    for &scale in &[0.05, 0.1, 0.2] {
        let ds = Dataset::generate(SynthConfig::paper().with_scale(scale));
        bench(&format!("study_{}_antennas", ds.num_antennas()), 5, || {
            IcnStudy::run(&ds, StudyConfig::fast())
        });
    }
}

fn pipeline_with_sweep() {
    let ds = Dataset::generate(SynthConfig::paper().with_scale(0.1));
    println!("== fig02_full_study_with_k_sweep ==");
    bench("k_sweep_2_to_15", 5, || {
        IcnStudy::run(
            &ds,
            StudyConfig {
                run_k_sweep: true,
                n_trees: 30,
                ..StudyConfig::paper()
            },
        )
    });
}

fn main() {
    pipeline_scale_sweep();
    pipeline_with_sweep();
}
