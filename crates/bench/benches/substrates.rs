//! Performance benches of the substrates behind each experiment
//! (manual timing loops; `harness = false`).
//!
//! Groups are named after the figure/table whose regeneration they time:
//! the workload generator (Table 1 / all figures), the RCA/RSCA transform
//! (Figure 1), pairwise distances + Ward clustering + quality indices
//! (Figures 2–4), the surrogate forest (Figure 5/9), TreeSHAP (Figure 5)
//! and temporal synthesis (Figures 10–11).
//!
//! ```sh
//! cargo bench -p icn-bench --bench substrates
//! ```

use icn_bench::timing::bench;
use icn_cluster::{agglomerate_condensed, dunn_index, silhouette_score, Condensed, Linkage};
use icn_core::{cluster_heatmap, filter_dead_rows, rsca};
use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_shap::forest_shap;
use icn_stats::Metric;
use icn_synth::{Dataset, StudyCalendar, SynthConfig};

fn bench_dataset(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::paper().with_scale(scale))
}

fn gen_workload() {
    println!("== table1_workload_generation ==");
    for &scale in &[0.05, 0.1, 0.2] {
        bench(&format!("generate_scale_{scale}"), 5, || {
            Dataset::generate(SynthConfig::paper().with_scale(scale))
        });
    }
}

fn transform() {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    println!("== fig01_rsca_transform ==");
    bench("rsca", 20, || rsca(&t));
}

fn clustering() {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    println!("== fig03_ward_clustering ==");
    bench("condensed_distances", 5, || {
        Condensed::from_rows(&features, Metric::SqEuclidean)
    });
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    bench("nn_chain_ward", 5, || {
        agglomerate_condensed(&cond, Linkage::Ward)
    });
}

fn quality_indices() {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond_w = Condensed::from_rows(&features, Metric::SqEuclidean);
    let history = agglomerate_condensed(&cond_w, Linkage::Ward);
    let labels = history.cut(9);
    let cond = Condensed::from_rows(&features, Metric::Euclidean);
    println!("== fig02_quality_indices ==");
    bench("silhouette_k9", 5, || silhouette_score(&cond, &labels));
    bench("dunn_k9", 5, || dunn_index(&cond, &labels));
}

fn surrogate() {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    let labels = agglomerate_condensed(&cond, Linkage::Ward).cut(9);
    let ts = TrainSet::new(features.clone(), labels);
    println!("== fig05_surrogate_forest ==");
    bench("fit_100_trees", 5, || {
        RandomForest::fit(&ts, &ForestConfig::default())
    });
    let forest = RandomForest::fit(&ts, &ForestConfig::default());
    bench("predict_batch", 5, || forest.predict_batch(&ts.x));
}

fn treeshap() {
    let ds = bench_dataset(0.1);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    let labels = agglomerate_condensed(&cond, Linkage::Ward).cut(9);
    let ts = TrainSet::new(features.clone(), labels);
    let forest = RandomForest::fit(
        &ts,
        &ForestConfig {
            n_trees: 50,
            ..ForestConfig::default()
        },
    );
    println!("== fig05_treeshap ==");
    bench("one_sample_50_trees_73_features", 10, || {
        forest_shap(&forest, features.row(0))
    });
}

fn temporal() {
    let ds = bench_dataset(0.05);
    let window = StudyCalendar::temporal_window();
    // One small cluster's heatmap.
    let members: Vec<&icn_synth::Antenna> = ds
        .antennas
        .iter()
        .filter(|a| a.archetype == icn_synth::Archetype::Workspace)
        .take(20)
        .collect();
    let rows: Vec<&[f64]> = members.iter().map(|a| ds.indoor_totals.row(a.id)).collect();
    println!("== fig10_temporal_heatmap ==");
    bench("cluster_heatmap_20_antennas", 5, || {
        cluster_heatmap(&members, &rows, &ds.services, 65, &window, ds.root_rng())
    });
}

fn main() {
    gen_workload();
    transform();
    clustering();
    quality_indices();
    surrogate();
    treeshap();
    temporal();
}
