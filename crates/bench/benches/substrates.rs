//! Criterion performance benches of the substrates behind each experiment.
//!
//! Groups are named after the figure/table whose regeneration they time:
//! the workload generator (Table 1 / all figures), the RCA/RSCA transform
//! (Figure 1), pairwise distances + Ward clustering + quality indices
//! (Figures 2–4), the surrogate forest (Figure 5/9), TreeSHAP (Figure 5)
//! and temporal synthesis (Figures 10–11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icn_cluster::{
    agglomerate_condensed, dunn_index, silhouette_score, Condensed, Linkage,
};
use icn_core::{cluster_heatmap, filter_dead_rows, rsca};
use icn_forest::{ForestConfig, RandomForest, TrainSet};
use icn_shap::forest_shap;
use icn_stats::Metric;
use icn_synth::{Dataset, StudyCalendar, SynthConfig};

fn bench_dataset(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::paper().with_scale(scale))
}

fn gen_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_workload_generation");
    g.sample_size(10);
    for &scale in &[0.05, 0.1, 0.2] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| Dataset::generate(SynthConfig::paper().with_scale(s)));
        });
    }
    g.finish();
}

fn transform(c: &mut Criterion) {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let mut g = c.benchmark_group("fig01_rsca_transform");
    g.bench_function("rsca", |b| b.iter(|| rsca(&t)));
    g.finish();
}

fn clustering(c: &mut Criterion) {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let mut g = c.benchmark_group("fig03_ward_clustering");
    g.sample_size(10);
    g.bench_function("condensed_distances", |b| {
        b.iter(|| Condensed::from_rows(&features, Metric::SqEuclidean))
    });
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    g.bench_function("nn_chain_ward", |b| {
        b.iter(|| agglomerate_condensed(&cond, Linkage::Ward))
    });
    g.finish();
}

fn quality_indices(c: &mut Criterion) {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond_w = Condensed::from_rows(&features, Metric::SqEuclidean);
    let history = agglomerate_condensed(&cond_w, Linkage::Ward);
    let labels = history.cut(9);
    let cond = Condensed::from_rows(&features, Metric::Euclidean);
    let mut g = c.benchmark_group("fig02_quality_indices");
    g.sample_size(10);
    g.bench_function("silhouette_k9", |b| {
        b.iter(|| silhouette_score(&cond, &labels))
    });
    g.bench_function("dunn_k9", |b| b.iter(|| dunn_index(&cond, &labels)));
    g.finish();
}

fn surrogate(c: &mut Criterion) {
    let ds = bench_dataset(0.2);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    let labels = agglomerate_condensed(&cond, Linkage::Ward).cut(9);
    let ts = TrainSet::new(features.clone(), labels);
    let mut g = c.benchmark_group("fig05_surrogate_forest");
    g.sample_size(10);
    g.bench_function("fit_100_trees", |b| {
        b.iter(|| RandomForest::fit(&ts, &ForestConfig::default()))
    });
    let forest = RandomForest::fit(&ts, &ForestConfig::default());
    g.bench_function("predict_batch", |b| b.iter(|| forest.predict_batch(&ts.x)));
    g.finish();
}

fn treeshap(c: &mut Criterion) {
    let ds = bench_dataset(0.1);
    let (t, _) = filter_dead_rows(&ds.indoor_totals);
    let features = rsca(&t);
    let cond = Condensed::from_rows(&features, Metric::SqEuclidean);
    let labels = agglomerate_condensed(&cond, Linkage::Ward).cut(9);
    let ts = TrainSet::new(features.clone(), labels);
    let forest = RandomForest::fit(
        &ts,
        &ForestConfig {
            n_trees: 50,
            ..ForestConfig::default()
        },
    );
    let mut g = c.benchmark_group("fig05_treeshap");
    g.bench_function("one_sample_50_trees_73_features", |b| {
        b.iter(|| forest_shap(&forest, features.row(0)))
    });
    g.finish();
}

fn temporal(c: &mut Criterion) {
    let ds = bench_dataset(0.05);
    let window = StudyCalendar::temporal_window();
    // One small cluster's heatmap.
    let members: Vec<&icn_synth::Antenna> = ds
        .antennas
        .iter()
        .filter(|a| a.archetype == icn_synth::Archetype::Workspace)
        .take(20)
        .collect();
    let rows: Vec<&[f64]> = members
        .iter()
        .map(|a| ds.indoor_totals.row(a.id))
        .collect();
    let mut g = c.benchmark_group("fig10_temporal_heatmap");
    g.sample_size(10);
    g.bench_function("cluster_heatmap_20_antennas", |b| {
        b.iter(|| cluster_heatmap(&members, &rows, &ds.services, 65, &window, ds.root_rng()))
    });
    g.finish();
}

criterion_group!(
    benches,
    gen_workload,
    transform,
    clustering,
    quality_indices,
    surrogate,
    treeshap,
    temporal
);
criterion_main!(benches);
