//! # icn-repro — reproduction of "Characterizing Mobile Service Demands at
//! Indoor Cellular Networks" (IMC '23)
//!
//! Facade crate re-exporting the whole workspace. Typical use:
//!
//! ```
//! use icn_repro::prelude::*;
//!
//! // A scaled-down synthetic nationwide measurement campaign...
//! let dataset = Dataset::generate(SynthConfig::small());
//! // ...analysed with the paper's full pipeline.
//! let study = IcnStudy::run(&dataset, StudyConfig::fast());
//! assert_eq!(study.cluster_sizes().len(), 9);
//! ```
//!
//! See the crate-level docs of the members for details:
//! [`icn_synth`] (measurement substrate), [`icn_ingest`] (streaming record
//! ingest with fault injection), [`icn_cluster`] (agglomerative
//! clustering), [`icn_forest`] (random forest), [`icn_shap`] (TreeSHAP /
//! KernelSHAP), [`icn_core`] (the study pipeline), [`icn_forecast`]
//! (busy-hour forecasting and anomaly detection), [`icn_report`]
//! (terminal figures), [`icn_stats`] (numerics), [`icn_obs`]
//! (stage tracing, metrics and benchmark reports), [`icn_testkit`]
//! (differential oracles, metamorphic helpers, golden snapshots).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use icn_cluster;
pub use icn_core;
pub use icn_forecast;
pub use icn_forest;
pub use icn_ingest;
pub use icn_obs;
pub use icn_probe;
pub use icn_report;
pub use icn_shap;
pub use icn_stats;
pub use icn_synth;
pub use icn_testkit;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use icn_cluster::{
        adjusted_rand_index, agglomerate, dunn_index, exact_memory_bytes, kmeans_best_of,
        max_sample_for_budget, normalized_mutual_info, purity, sampled_ward, silhouette_score,
        ClusterPath, Condensed, Dendrogram, Linkage, SampledWardConfig,
    };
    pub use icn_core::{
        classify_outdoor, cluster_heatmap, distribution_entropy, filter_dead_rows,
        label_distribution, outdoor_rsca, rca, rsca, service_heatmap, EnvCrosstab, IcnStudy,
        StudyConfig, TemporalHeatmap,
    };
    pub use icn_forecast::{
        detect, ets_forecast, forest_forecast, seasonal_naive_forecast, Anomalies, DetectorConfig,
        ForecastConfig, ForecastReport, Model,
    };
    pub use icn_forest::{ForestConfig, RandomForest, TrainSet};
    pub use icn_ingest::{
        Checkpoint, FaultConfig, FaultySource, HourlyRecord, IngestConfig, IngestPipeline,
        IngestResult, IngestSchema, QuarantineReason, RecordSource, VecSource,
    };
    pub use icn_obs::{BenchReport, Json, Registry, Span};
    pub use icn_probe::{run_campaign, CampaignConfig, DpiConfig};
    pub use icn_shap::{explain_forest_class, forest_shap, kernel_shap, Direction};
    pub use icn_stats::{Histogram, Matrix, Metric, Rng};
    pub use icn_synth::{
        record_stream, Archetype, Category, City, Dataset, Date, Environment, Group, RecordStream,
        Service, StudyCalendar, SynthConfig,
    };
}
