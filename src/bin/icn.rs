//! `icn` — command-line interface to the reproduction.
//!
//! ```text
//! icn generate --scale 0.1 --out data/          # synthesize & export a campaign
//! icn run      --scale 0.1 [--sweep] [--json]   # run the full pipeline, print findings
//! icn explain  --scale 0.1 --cluster 3 --top 15 # SHAP explanation of one cluster
//! icn temporal --scale 0.1 --cluster 0          # Figure 10-style heatmap of one cluster
//! icn probe    --scale 0.05 --days 3            # Section 3 collection-path simulation
//! icn ingest   --scale 0.05 --days 3            # streaming ingest of the record feed
//! icn forecast --scale 0.1 --horizon 24         # busy-hour forecasts + anomaly scan
//! icn testkit  [--bless]                        # golden-snapshot check / regeneration
//! icn obs diff a.json b.json                    # gate report b against baseline a
//! icn obs top  report.json                      # self-time treetable of a report
//! icn obs mem  report.json                      # allocation treetable of a v3 report
//! ```
//!
//! `icn run` is an alias of `icn study`. `--metrics-out <path>` writes an
//! `icn-obs/v3` BenchReport, `--trace-out <path>` a Chrome trace-event
//! JSON (open in `chrome://tracing` or Perfetto); either flag enables the
//! observability registry for the run. `--mem-budget-mb <n>` additionally
//! enforces a ceiling on the allocator window peak — a breached budget
//! exits with status 3 after the report (with its stamped verdict) is
//! written. `icn obs mem report.json` prints the per-span allocation
//! treetable of a v3 report. `ICN_LOG=level[,target=level]` filters the
//! structured event log and echoes matches to stderr.
//!
//! Flags are parsed by hand (the workspace deliberately avoids extra
//! dependencies); every subcommand is deterministic in `--seed`.

use icn_repro::prelude::*;
use std::io::Write as _;

// The binary owns the process, so it installs the counting allocator:
// metered runs then carry an allocator-measured `memory` section. While
// the registry is disabled this is a single relaxed-load branch per
// allocation (see `icn_obs::mem`), and outputs stay bit-identical.
#[global_allocator]
static ALLOC: icn_repro::icn_obs::CountingAlloc = icn_repro::icn_obs::CountingAlloc::system();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit(None);
    };
    if cmd == "obs" {
        cmd_obs(&args[1..]);
        return;
    }
    // `run` is the ergonomic alias for the full pipeline.
    let cmd = if cmd == "study" { "run" } else { cmd.as_str() };
    let opts = Opts::parse(&args[1..]);
    let run = |o: &Opts| match cmd {
        "generate" => cmd_generate(o),
        "run" => cmd_study(o),
        "explain" => cmd_explain(o),
        "temporal" => cmd_temporal(o),
        "forecast" => cmd_forecast(o),
        "probe" => cmd_probe(o),
        "ingest" => cmd_ingest(o),
        "testkit" => cmd_testkit(o),
        "help" | "--help" | "-h" => usage_and_exit(None),
        other => usage_and_exit(Some(other)),
    };
    let build_report = |snap: &icn_repro::icn_obs::Snapshot| {
        let mut report = BenchReport::build(snap, &format!("icn-{cmd}"), opts.scale);
        if cmd == "ingest" {
            report.env.chunk = Some(opts.chunk as u64);
        }
        // Stamp the enforced budget and its verdict into the memory
        // section, so the report itself records whether the run fit.
        if let (Some(mb), Some(mem)) = (opts.mem_budget_mb, report.memory.as_mut()) {
            mem.budget_mb = Some(mb);
            mem.budget_verdict = Some(
                if mem.peak_bytes > mb.saturating_mul(1024 * 1024) {
                    "breached"
                } else {
                    "ok"
                }
                .to_string(),
            );
        }
        report
    };
    // Reports whether the run fit its `--mem-budget-mb`; `false` means
    // the caller must exit 3 (after every output file is written).
    let check_budget = |report: &BenchReport| -> bool {
        let Some(mb) = opts.mem_budget_mb else {
            return true;
        };
        match &report.memory {
            Some(mem) if mem.breached() => {
                eprintln!(
                    "memory budget BREACHED: allocator peak {} bytes > {mb} MiB \
                     (threads={})",
                    mem.peak_bytes, report.env.threads
                );
                false
            }
            Some(mem) => {
                eprintln!(
                    "memory budget ok: allocator peak {} bytes <= {mb} MiB (threads={})",
                    mem.peak_bytes, report.env.threads
                );
                true
            }
            None => {
                eprintln!("memory budget: no allocation data recorded; budget not enforced");
                true
            }
        }
    };
    if let Some(sweep) = &opts.threads_sweep {
        // One invocation, one report per thread count: every run shares
        // the binary and machine state, so the set is a clean scaling
        // curve. The `ICN_THREADS` override is how `par::thread_count`
        // and `EnvInfo::capture` both resolve worker counts, so each
        // member report self-describes its configuration.
        let Some(metrics_path) = &opts.metrics_out else {
            eprintln!("--threads-sweep needs --metrics-out <path> for the report set");
            std::process::exit(2);
        };
        let saved = std::env::var("ICN_THREADS").ok();
        let obs = icn_repro::icn_obs::global();
        obs.enable();
        let mut reports = Vec::with_capacity(sweep.len());
        let mut last_snap = None;
        let mut budget_ok = true;
        for &threads in sweep {
            std::env::set_var("ICN_THREADS", threads.to_string());
            // Also zeroes the allocation window, so each sweep member
            // gets — and is budget-checked against — its own peak.
            obs.reset();
            eprintln!("threads-sweep: running {cmd} with {threads} thread(s)...");
            run(&opts);
            let snap = obs.snapshot();
            let report = build_report(&snap);
            budget_ok &= check_budget(&report);
            reports.push(report);
            last_snap = Some(snap);
        }
        match saved {
            Some(v) => std::env::set_var("ICN_THREADS", v),
            None => std::env::remove_var("ICN_THREADS"),
        }
        let set = icn_repro::icn_obs::BenchReportSet { reports };
        if let Err(e) = set.write_to_file(metrics_path) {
            eprintln!("failed to write metrics to {metrics_path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "metrics set ({} reports) written to {metrics_path}",
            set.reports.len()
        );
        if let (Some(path), Some(snap)) = (&opts.trace_out, &last_snap) {
            if let Err(e) = icn_repro::icn_obs::write_chrome_trace(snap, path) {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("chrome trace (last sweep run) written to {path}");
        }
        if !budget_ok {
            std::process::exit(3);
        }
        return;
    }
    // A memory budget needs the allocation window even without report or
    // trace output, so it enables metering on its own.
    let metered =
        opts.metrics_out.is_some() || opts.trace_out.is_some() || opts.mem_budget_mb.is_some();
    if metered {
        icn_repro::icn_obs::global().enable();
    }
    run(&opts);
    if metered {
        let snap = icn_repro::icn_obs::global().snapshot();
        let report = build_report(&snap);
        if let Some(path) = &opts.metrics_out {
            if let Err(e) = report.write_to_file(path) {
                eprintln!("failed to write metrics to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("metrics written to {path}");
        }
        if let Some(path) = &opts.trace_out {
            if let Err(e) = icn_repro::icn_obs::write_chrome_trace(&snap, path) {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("chrome trace written to {path}");
        }
        // Enforced only after every requested output is on disk, so a
        // breached run still leaves its report (verdict included) behind.
        if !check_budget(&report) {
            std::process::exit(3);
        }
    }
}

/// `icn obs <diff|top|mem>` — report tooling; parses its own positional
/// arguments (the common Opts flags do not apply here).
fn cmd_obs(args: &[String]) {
    // Every report file — legacy single `icn-obs/v1..v3` documents and
    // `icn-bench-set/1` sweeps alike — loads through the set parser.
    fn load_set(path: &str) -> icn_repro::icn_obs::BenchReportSet {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match icn_repro::icn_obs::BenchReportSet::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    match args.first().map(String::as_str) {
        Some("diff") => {
            let mut paths: Vec<&String> = Vec::new();
            let mut t = icn_repro::icn_obs::DiffThresholds::default();
            let mut i = 1;
            while i < args.len() {
                let take = |i: usize| -> Option<&String> { args.get(i + 1) };
                match args[i].as_str() {
                    "--max-wall-ratio" => {
                        t.max_wall_ratio = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.max_wall_ratio);
                        i += 2;
                    }
                    "--min-wall-ms" => {
                        t.min_wall_ms = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.min_wall_ms);
                        i += 2;
                    }
                    "--max-hist-ratio" => {
                        t.max_hist_ratio = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.max_hist_ratio);
                        i += 2;
                    }
                    "--min-hist-ns" => {
                        t.min_hist_ns = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.min_hist_ns);
                        i += 2;
                    }
                    "--max-bytes-ratio" => {
                        t.max_bytes_ratio = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.max_bytes_ratio);
                        i += 2;
                    }
                    "--max-peak-ratio" => {
                        t.max_peak_ratio = take(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(t.max_peak_ratio);
                        i += 2;
                    }
                    "--strict-counters" => {
                        t.strict_counters = true;
                        i += 1;
                    }
                    "--skip-missing" => {
                        t.skip_missing = true;
                        i += 1;
                    }
                    "--stage-wall-ratio" => {
                        // Repeatable `name=ratio` per-stage override.
                        match take(i).and_then(|v| {
                            let (name, ratio) = v.split_once('=')?;
                            Some((name.to_string(), ratio.parse::<f64>().ok()?))
                        }) {
                            Some(pair) => t.stage_wall_ratios.push(pair),
                            None => {
                                eprintln!(
                                    "--stage-wall-ratio wants <stage>=<ratio>, e.g. \
                                     stage3_surrogate=1.3"
                                );
                                std::process::exit(2);
                            }
                        }
                        i += 2;
                    }
                    flag if flag.starts_with("--") => {
                        eprintln!("unknown flag: {flag}");
                        std::process::exit(2);
                    }
                    _ => {
                        paths.push(&args[i]);
                        i += 1;
                    }
                }
            }
            let [a_path, b_path] = paths[..] else {
                eprintln!("usage: icn obs diff <baseline.json> <candidate.json> [thresholds]");
                std::process::exit(2);
            };
            let a = load_set(a_path);
            let b = load_set(b_path);
            let pairs = icn_repro::icn_obs::pair_reports(&a, &b);
            if pairs.is_empty() {
                eprintln!(
                    "no comparable configuration: {a_path} (threads {:?}) vs {b_path} (threads {:?})",
                    a.reports.iter().map(|r| r.env.threads).collect::<Vec<_>>(),
                    b.reports.iter().map(|r| r.env.threads).collect::<Vec<_>>(),
                );
                std::process::exit(1);
            }
            let mut failed = false;
            for (base, cand) in &pairs {
                if pairs.len() > 1 {
                    println!("== scale={} threads={} ==", base.scale, base.env.threads);
                }
                let diff = icn_repro::icn_obs::diff_reports(base, cand, &t);
                print!("{}", diff.render());
                failed |= !diff.passed();
            }
            if failed {
                eprintln!("perf gate FAILED: {b_path} regressed against {a_path}");
                std::process::exit(1);
            }
            println!("perf gate passed: {b_path} vs {a_path}");
        }
        Some("top") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: icn obs top <report.json>");
                std::process::exit(2);
            };
            let set = load_set(path);
            for report in &set.reports {
                if set.reports.len() > 1 {
                    println!(
                        "== scale={} threads={} ==",
                        report.scale, report.env.threads
                    );
                }
                print!("{}", icn_repro::icn_obs::render_top(report));
            }
        }
        Some("mem") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: icn obs mem <report.json>");
                std::process::exit(2);
            };
            let set = load_set(path);
            for report in &set.reports {
                if set.reports.len() > 1 {
                    println!(
                        "== scale={} threads={} ==",
                        report.scale, report.env.threads
                    );
                }
                print!("{}", icn_repro::icn_obs::render_mem(report));
            }
        }
        _ => {
            eprintln!("usage: icn obs <diff|top|mem> ...");
            std::process::exit(2);
        }
    }
}

/// Common flags.
struct Opts {
    scale: f64,
    scale_explicit: bool,
    seed: u64,
    sweep: bool,
    json: bool,
    bless: bool,
    cluster: usize,
    top: usize,
    days: usize,
    out: Option<String>,
    golden_dir: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    mem_budget_mb: Option<u64>,
    threads_sweep: Option<Vec<usize>>,
    chunk: usize,
    lateness: u32,
    faults: Option<String>,
    fault_seed: Option<u64>,
    checkpoint: Option<String>,
    resume: bool,
    halt_after: Option<u64>,
    verify: bool,
    cluster_path: ClusterPath,
    cluster_budget_mb: Option<usize>,
    horizon: usize,
    model: Model,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            scale: 0.1,
            scale_explicit: false,
            seed: SynthConfig::default().seed,
            sweep: false,
            json: false,
            bless: false,
            cluster: 0,
            top: 10,
            days: 3,
            out: None,
            golden_dir: None,
            metrics_out: None,
            trace_out: None,
            mem_budget_mb: None,
            threads_sweep: None,
            chunk: 4096,
            lateness: 2,
            faults: None,
            fault_seed: None,
            checkpoint: None,
            resume: false,
            halt_after: None,
            verify: false,
            cluster_path: ClusterPath::Auto,
            cluster_budget_mb: None,
            horizon: 24,
            model: Model::Ets,
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Option<&String> { args.get(i + 1) };
            match args[i].as_str() {
                "--scale" => {
                    o.scale = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.scale);
                    o.scale_explicit = true;
                    i += 2;
                }
                "--seed" => {
                    o.seed = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.seed);
                    i += 2;
                }
                "--cluster" => {
                    o.cluster = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.cluster);
                    i += 2;
                }
                "--top" => {
                    o.top = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.top);
                    i += 2;
                }
                "--days" => {
                    o.days = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.days);
                    i += 2;
                }
                "--out" => {
                    o.out = take(i).cloned();
                    i += 2;
                }
                "--golden-dir" => {
                    o.golden_dir = take(i).cloned();
                    i += 2;
                }
                "--bless" => {
                    o.bless = true;
                    i += 1;
                }
                "--metrics-out" => {
                    o.metrics_out = take(i).cloned();
                    i += 2;
                }
                "--trace-out" => {
                    o.trace_out = take(i).cloned();
                    i += 2;
                }
                "--mem-budget-mb" => {
                    match take(i).and_then(|v| v.parse().ok()) {
                        Some(mb) if mb > 0 => o.mem_budget_mb = Some(mb),
                        _ => {
                            eprintln!("--mem-budget-mb wants a positive integer mebibyte count");
                            std::process::exit(2);
                        }
                    }
                    i += 2;
                }
                "--threads-sweep" => {
                    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
                    let parsed: Option<Vec<usize>> = take(i).map(|v| {
                        v.split(',')
                            .filter_map(|part| match part.trim() {
                                "max" => Some(hw),
                                p => p.parse::<usize>().ok(),
                            })
                            .filter(|&n| n >= 1)
                            .collect()
                    });
                    match parsed {
                        Some(mut list) if !list.is_empty() => {
                            // `1,max` on a single-core box collapses to
                            // one configuration, not two identical runs.
                            list.dedup();
                            o.threads_sweep = Some(list);
                        }
                        _ => {
                            eprintln!(
                                "--threads-sweep wants a comma-separated list of thread \
                                 counts (or max), e.g. 1,2 or 1,max"
                            );
                            std::process::exit(2);
                        }
                    }
                    i += 2;
                }
                "--chunk" => {
                    o.chunk = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.chunk);
                    i += 2;
                }
                "--lateness" => {
                    o.lateness = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.lateness);
                    i += 2;
                }
                "--faults" => {
                    o.faults = take(i).cloned();
                    i += 2;
                }
                "--fault-seed" => {
                    o.fault_seed = take(i).and_then(|v| v.parse().ok());
                    i += 2;
                }
                "--checkpoint" => {
                    o.checkpoint = take(i).cloned();
                    i += 2;
                }
                "--halt-after" => {
                    o.halt_after = take(i).and_then(|v| v.parse().ok());
                    i += 2;
                }
                "--resume" => {
                    o.resume = true;
                    i += 1;
                }
                "--verify" => {
                    o.verify = true;
                    i += 1;
                }
                "--sweep" => {
                    o.sweep = true;
                    i += 1;
                }
                "--json" => {
                    o.json = true;
                    i += 1;
                }
                "--cluster-path" => {
                    match take(i).and_then(|v| ClusterPath::parse(v)) {
                        Some(p) => o.cluster_path = p,
                        None => {
                            eprintln!(
                                "--cluster-path wants one of: exact, sampled, auto (got {:?})",
                                take(i).map(String::as_str).unwrap_or("<none>")
                            );
                            std::process::exit(2);
                        }
                    }
                    i += 2;
                }
                "--horizon" => {
                    o.horizon = take(i).and_then(|v| v.parse().ok()).unwrap_or(o.horizon);
                    i += 2;
                }
                "--model" => {
                    match take(i).and_then(|v| Model::parse(v)) {
                        Some(m) => o.model = m,
                        None => {
                            eprintln!(
                                "--model wants one of: naive, ets, forest (got {:?})",
                                take(i).map(String::as_str).unwrap_or("<none>")
                            );
                            std::process::exit(2);
                        }
                    }
                    i += 2;
                }
                "--cluster-budget-mb" => {
                    match take(i).and_then(|v| v.parse().ok()) {
                        Some(mb) => o.cluster_budget_mb = Some(mb),
                        None => {
                            eprintln!("--cluster-budget-mb wants an integer megabyte count");
                            std::process::exit(2);
                        }
                    }
                    i += 2;
                }
                unknown => {
                    eprintln!("unknown flag: {unknown}");
                    std::process::exit(2);
                }
            }
        }
        o
    }

    fn dataset(&self) -> Dataset {
        Dataset::generate(
            SynthConfig::paper()
                .with_scale(self.scale)
                .with_seed(self.seed),
        )
    }

    fn study(&self, ds: &Dataset) -> IcnStudy {
        let defaults = StudyConfig::paper();
        let config = StudyConfig {
            run_k_sweep: self.sweep,
            cluster_path: self.cluster_path,
            cluster_budget_mb: self.cluster_budget_mb.unwrap_or(defaults.cluster_budget_mb),
            ..defaults
        };
        match IcnStudy::try_run(ds, config) {
            Ok(study) => study,
            Err(e) => {
                eprintln!("study failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn usage_and_exit(bad: Option<&str>) -> ! {
    if let Some(b) = bad {
        eprintln!("unknown command: {b}\n");
    }
    eprintln!(
        "icn — reproduction of 'Characterizing Mobile Service Demands at Indoor \
         Cellular Networks' (IMC '23)\n\n\
         USAGE: icn <command> [flags]\n\n\
         COMMANDS:\n  \
         generate   synthesize a measurement campaign and export CSV/JSONL\n  \
         run        run the full analysis pipeline and print the findings (alias: study)\n  \
         explain    SHAP explanation of one cluster\n  \
         temporal   Figure 10-style temporal heatmap of one cluster\n  \
         probe      simulate the Section 3 collection path\n  \
         ingest     stream the hourly record feed into T (faults, checkpoints)\n  \
         forecast   per-cluster busy-hour forecasts, backtest and anomaly scan\n  \
         testkit    check pipeline golden snapshots (--bless to regenerate)\n  \
         obs diff   compare two BenchReports against per-metric thresholds\n  \
         obs top    print a self-time treetable of a BenchReport\n  \
         obs mem    print the allocation treetable of an icn-obs/v3 BenchReport\n\n\
         FLAGS:\n  \
         --scale <f>    population scale, 1.0 = 4,762 antennas (default 0.1)\n  \
         --seed <u64>   master seed\n  \
         --sweep        run the Figure 2 k-sweep (study)\n  \
         --json         machine-readable output (study)\n  \
         --cluster <n>  cluster id (explain/temporal)\n  \
         --cluster-path <p>  stage-2 path: exact, sampled, or auto (study, default auto —\n                 \
         exact while the distance matrix fits the memory budget)\n  \
         --cluster-budget-mb <n>  stage-2 memory budget steering auto selection and the\n                 \
         sampled path's sample size (study, default 512)\n  \
         --top <n>      services to list (explain, default 10)\n  \
         --days <n>     probe window length (probe, default 3)\n  \
         --out <dir>    export directory (generate)\n  \
         --bless        regenerate golden snapshots instead of checking (testkit)\n  \
         --golden-dir <dir>  golden snapshot directory (testkit, default tests/golden)\n  \
         --metrics-out <path>  write an icn-obs/v3 benchmark report (JSON)\n  \
         --mem-budget-mb <n>  enforce a ceiling on the run's allocator peak; a breach\n                 \
         stamps the report verdict and exits with status 3\n  \
         --threads-sweep <list>  re-run the command once per thread count (e.g. 1,2 or\n                 \
         1,max) and write an icn-bench-set/1 report set to --metrics-out\n  \
         --trace-out <path>  write a Chrome trace-event JSON (chrome://tracing, Perfetto)\n  \
         --chunk <n>    records per source pull (ingest, default 4096)\n  \
         --lateness <h> hours a record may trail the watermark (ingest, default 2)\n  \
         --faults <spec>  inject faults, e.g. drop=0.01,dup=0.1,reorder=0.2,corrupt=0.01\n  \
         --fault-seed <u64>  fault-injection seed (ingest)\n  \
         --checkpoint <path>  checkpoint file to write on halt / read on resume\n  \
         --halt-after <n>  stop after n chunks and write the checkpoint (ingest)\n  \
         --resume       resume from --checkpoint instead of starting fresh\n  \
         --verify       after ingest, compare T bitwise against the batch matrix\n  \
         --horizon <h>  forecast horizon in hours (forecast, default 24)\n  \
         --model <m>    headline forecast model: naive, ets or forest (forecast, default ets)\n  \
         --skip-missing       obs diff: stages absent from the candidate are skipped, not failed\n  \
         --stage-wall-ratio <stage>=<r>  obs diff: per-stage wall-clock ratio override (repeatable)\n  \
         --max-peak-ratio <r>  obs diff: allowed growth of the allocator window peak\n                 \
         (default 1.5; shrinkage always passes)"
    );
    std::process::exit(if bad.is_some() { 2 } else { 0 });
}

fn cmd_generate(o: &Opts) {
    let ds = o.dataset();
    let dir = o.out.clone().unwrap_or_else(|| "icn-data".to_string());
    std::fs::create_dir_all(&dir).expect("create output directory");
    let csv_path = format!("{dir}/indoor_totals.csv");
    let jsonl_path = format!("{dir}/antennas.jsonl");
    std::fs::File::create(&csv_path)
        .and_then(|mut f| f.write_all(ds.indoor_totals_csv().as_bytes()))
        .expect("write CSV");
    std::fs::File::create(&jsonl_path)
        .and_then(|mut f| f.write_all(ds.antennas_jsonl().as_bytes()))
        .expect("write JSONL");
    println!(
        "wrote {} antennas x {} services:\n  {}\n  {}",
        ds.num_antennas(),
        ds.num_services(),
        csv_path,
        jsonl_path
    );
}

fn cmd_study(o: &Opts) {
    let ds = o.dataset();
    let st = o.study(&ds);
    if o.json {
        let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();
        let clusters: Vec<Json> = (0..st.config.k)
            .map(|c| {
                let (env, share) = st.crosstab.dominant_environment(c);
                let top: Vec<Json> = st.explanations[c]
                    .top(5)
                    .iter()
                    .map(|i| Json::str(names[i.feature]))
                    .collect();
                Json::obj(vec![
                    ("cluster", Json::num(c as f64)),
                    ("size", Json::num(st.cluster_sizes()[c] as f64)),
                    ("dominant_environment", Json::str(env.label())),
                    ("environment_share", Json::num(share)),
                    ("paris_share", Json::num(st.crosstab.paris_share[c])),
                    ("top_shap_services", Json::Arr(top)),
                ])
            })
            .collect();
        let oob = match st.surrogate_oob {
            Some(v) => Json::num(v),
            None => Json::Null,
        };
        let out = Json::obj(vec![
            ("antennas", Json::num(st.num_antennas() as f64)),
            ("k", Json::num(st.config.k as f64)),
            ("surrogate_accuracy", Json::num(st.surrogate_accuracy)),
            ("surrogate_oob", oob),
            (
                "outdoor_dominant_cluster",
                Json::num(st.outdoor.dominant.0 as f64),
            ),
            ("outdoor_dominant_share", Json::num(st.outdoor.dominant.1)),
            ("clusters", Json::Arr(clusters)),
        ]);
        println!("{}", out.to_pretty());
        return;
    }
    println!(
        "{} antennas -> {} clusters; surrogate accuracy {:.3} (OOB {:?})",
        st.num_antennas(),
        st.config.k,
        st.surrogate_accuracy,
        st.surrogate_oob
    );
    if !st.k_sweep.is_empty() {
        for q in &st.k_sweep {
            println!(
                "k={:<3} silhouette {:.4}  dunn {:.5}",
                q.k, q.silhouette, q.dunn
            );
        }
    }
    let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();
    for c in 0..st.config.k {
        let (env, share) = st.crosstab.dominant_environment(c);
        let top: Vec<&str> = st.explanations[c]
            .top(3)
            .iter()
            .map(|i| names[i.feature])
            .collect();
        println!(
            "cluster {c}: {:>4} antennas, {} ({:.0}%), top services: {}",
            st.cluster_sizes()[c],
            env.label(),
            100.0 * share,
            top.join(", ")
        );
    }
    let (dom, share) = st.outdoor.dominant;
    println!(
        "outdoor: {:.0}% of {} antennas in cluster {dom}",
        100.0 * share,
        st.outdoor.predicted.len()
    );
}

fn cmd_explain(o: &Opts) {
    let ds = o.dataset();
    let st = o.study(&ds);
    if o.cluster >= st.config.k {
        eprintln!("cluster {} out of range (k = {})", o.cluster, st.config.k);
        std::process::exit(2);
    }
    let names: Vec<&str> = ds.services.iter().map(|s| s.name).collect();
    print!(
        "{}",
        icn_repro::icn_report::beeswarm::render(&st.explanations[o.cluster], &names, o.top, 28)
    );
}

fn cmd_temporal(o: &Opts) {
    let ds = o.dataset();
    let st = o.study(&ds);
    if o.cluster >= st.config.k {
        eprintln!("cluster {} out of range (k = {})", o.cluster, st.config.k);
        std::process::exit(2);
    }
    let window = StudyCalendar::temporal_window();
    let (members, rows): (Vec<&icn_repro::icn_synth::Antenna>, Vec<&[f64]>) = st
        .live_rows
        .iter()
        .enumerate()
        .filter(|(pos, _)| st.labels[*pos] == o.cluster)
        .map(|(_, &row)| (&ds.antennas[row], ds.indoor_totals.row(row)))
        .unzip();
    if members.is_empty() {
        eprintln!("cluster {} is empty", o.cluster);
        std::process::exit(1);
    }
    let hm = cluster_heatmap(&members, &rows, &ds.services, 65, &window, ds.root_rng());
    let rhythm = hm.rhythm();
    println!(
        "cluster {} — {} antennas; commute {:.2}, weekend {:.2}, strike {:.2}, \
         burstiness {:.1}, ACF-24 {:.2}",
        o.cluster,
        members.len(),
        hm.commute_ratio(),
        hm.weekend_ratio(),
        hm.strike_dip(),
        hm.burstiness(),
        rhythm.daily
    );
    let labels: Vec<String> = (0..hm.values.len()).map(|d| window.date(d).iso()).collect();
    print!(
        "{}",
        icn_repro::icn_report::heatmap::render_sequential(&hm.values, Some(&labels))
    );
}

fn cmd_forecast(o: &Opts) {
    let ds = o.dataset();
    let defaults = StudyConfig::paper();
    let config = StudyConfig {
        run_k_sweep: o.sweep,
        cluster_path: o.cluster_path,
        cluster_budget_mb: o.cluster_budget_mb.unwrap_or(defaults.cluster_budget_mb),
        run_forecast: true,
        forecast_horizon: o.horizon,
        forecast_model: o.model,
        ..defaults
    };
    let st = match IcnStudy::try_run(&ds, config) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    let report = st.forecast.as_ref().expect("run_forecast was set");
    if o.json {
        let clusters: Vec<Json> = report
            .clusters
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("cluster", Json::num(c.cluster as f64)),
                    ("antennas", Json::num(c.n_antennas as f64)),
                    ("busy_hour", Json::num(c.busy_hour as f64)),
                    ("mae_naive", Json::num(c.backtest.naive.mae)),
                    ("mae_ets", Json::num(c.backtest.ets.mae)),
                    ("mae_forest", Json::num(c.backtest.forest.mae)),
                    (
                        "anomalous_hours",
                        Json::Arr(
                            c.anomalies
                                .flagged
                                .iter()
                                .map(|&t| Json::num(t as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "forecast",
                        Json::Arr(c.forecast.iter().map(|&v| Json::num(v)).collect()),
                    ),
                ])
            })
            .collect();
        let mean = report.mean_backtest();
        let out = Json::obj(vec![
            ("model", Json::str(report.model.as_str())),
            ("horizon", Json::num(report.horizon as f64)),
            ("mean_mae_naive", Json::num(mean.naive.mae)),
            ("mean_mae_ets", Json::num(mean.ets.mae)),
            ("mean_mae_forest", Json::num(mean.forest.mae)),
            ("clusters", Json::Arr(clusters)),
        ]);
        println!("{}", out.to_pretty());
        return;
    }
    println!(
        "forecast: model {}, horizon {} h, {} clusters",
        report.model.as_str(),
        report.horizon,
        report.clusters.len()
    );
    for c in &report.clusters {
        if c.n_antennas == 0 {
            println!("cluster {}: empty", c.cluster);
            continue;
        }
        let bursts = c.anomalies.bursts().len();
        let dips = c.anomalies.dips().len();
        println!(
            "cluster {}: {:>4} antennas, busy hour {:02}:00, backtest MAE \
             naive {:.1} / ets {:.1} / forest {:.1}, anomalies {} ({} burst, {} dip)",
            c.cluster,
            c.n_antennas,
            c.busy_hour,
            c.backtest.naive.mae,
            c.backtest.ets.mae,
            c.backtest.forest.mae,
            c.anomalies.flagged.len(),
            bursts,
            dips,
        );
    }
    let mean = report.mean_backtest();
    println!(
        "mean backtest MAE: naive {:.2}, ets {:.2}, forest {:.2}; {} anomalous hours total",
        mean.naive.mae,
        mean.ets.mae,
        mean.forest.mae,
        report.total_anomalous_hours()
    );
}

fn cmd_ingest(o: &Opts) {
    use icn_repro::icn_ingest::{
        Checkpoint, FaultConfig, FaultySource, IngestConfig, IngestPipeline, SourceError,
    };
    use icn_repro::icn_synth::RecordStream;

    // Either the raw synthetic feed or the same feed behind the
    // deterministic fault injector, unified so one code path drives both.
    enum Feed {
        Clean(RecordStream),
        Faulty(FaultySource<RecordStream>),
    }
    impl RecordSource for Feed {
        fn next_chunk(&mut self, max: usize) -> Result<Vec<HourlyRecord>, SourceError> {
            match self {
                Feed::Clean(s) => s.next_chunk(max),
                Feed::Faulty(s) => s.next_chunk(max),
            }
        }
    }

    let ds = o.dataset();
    let window = StudyCalendar::custom(icn_repro::icn_synth::Date::new(2023, 1, 9), o.days);
    let config = IngestConfig {
        chunk_size: o.chunk,
        lateness_hours: o.lateness,
        ..IngestConfig::default()
    };
    let faults = o.faults.as_deref().map(|spec| {
        let mut f = match FaultConfig::parse_spec(spec) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bad --faults spec: {e}");
                std::process::exit(2);
            }
        };
        if let Some(seed) = o.fault_seed {
            f.seed = seed;
        }
        f
    });

    let stream = record_stream(&ds, &window);
    let schema = stream.schema();
    let total_records = stream.total_records();
    let mut feed = match &faults {
        Some(f) => Feed::Faulty(stream.with_faults(*f)),
        None => Feed::Clean(stream),
    };

    let mut pipe = if o.resume {
        let Some(path) = o.checkpoint.as_deref() else {
            eprintln!("--resume requires --checkpoint <path>");
            std::process::exit(2);
        };
        let ck = match Checkpoint::read_file(std::path::Path::new(path)) {
            Ok(ck) => ck,
            Err(e) => {
                eprintln!("cannot read checkpoint {path}: {e}");
                std::process::exit(1);
            }
        };
        let consumed = ck.records_consumed;
        let pipe = match IngestPipeline::from_checkpoint(ck, config) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = feed.skip_records(consumed) {
            eprintln!("cannot advance source past checkpoint: {e}");
            std::process::exit(1);
        }
        eprintln!("resumed from {path} at record {consumed}");
        pipe
    } else {
        IngestPipeline::new(schema, config)
    };

    let finished = match pipe.run_until(&mut feed, o.halt_after) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    if !finished {
        let Some(path) = o.checkpoint.as_deref() else {
            eprintln!(
                "halted after {} chunks but no --checkpoint to write",
                pipe.stats().chunks
            );
            std::process::exit(2);
        };
        let ck = pipe.checkpoint();
        if let Err(e) = ck.write_file(std::path::Path::new(path)) {
            eprintln!("cannot write checkpoint {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "halted at record {}/{total_records}; checkpoint {} -> {path}",
            ck.records_consumed,
            ck.hash(),
        );
        return;
    }

    let final_hash = pipe.checkpoint().hash();
    let stats = pipe.stats().clone();
    let result = pipe.finish();
    println!(
        "ingested {} records in {} chunks: {} ok, {} quarantined, {} retries",
        result.records_consumed,
        stats.chunks,
        stats.ok,
        stats.quarantined_total(),
        stats.retried
    );
    for (reason, count) in &stats.quarantined {
        println!("  quarantine {reason}: {count}");
    }
    if let Feed::Faulty(src) = &feed {
        let r = src.report();
        println!(
            "injected faults: {} dropped, {} duplicated, {} corrupted, {} reordered blocks, \
             {} transient errors",
            r.dropped, r.duplicated, r.corrupted, r.reordered_blocks, r.transient_errors
        );
    }
    println!(
        "T: {}x{}, total volume {:.3} GB; final state hash {final_hash}",
        result.totals.rows(),
        result.totals.cols(),
        result.totals.total() / 1000.0
    );
    if o.verify {
        let batch = &ds.indoor_totals;
        let diverging = result
            .totals
            .as_slice()
            .iter()
            .zip(batch.as_slice())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        if diverging == 0 {
            println!("verify: streamed T is bit-identical to the batch matrix");
        } else {
            eprintln!(
                "verify FAILED: {diverging}/{} cells diverge from the batch matrix",
                batch.as_slice().len()
            );
            std::process::exit(1);
        }
    }
}

fn cmd_testkit(o: &Opts) {
    use icn_repro::icn_testkit::{golden, ingest};
    // Golden snapshots are pinned at scale 0.05 (not the CLI's usual 0.1
    // default); an explicit --scale still wins for ad-hoc comparisons.
    let scale = if o.scale_explicit {
        o.scale
    } else {
        golden::GOLDEN_SCALE
    };
    let dir = o
        .golden_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(golden::default_golden_dir);
    eprintln!("computing pipeline snapshot at scale {scale}...");
    let snap = golden::snapshot_pipeline(scale);
    // The ingest golden is pinned at GOLDEN_SCALE only (its file name
    // carries no scale), so skip it for ad-hoc scales.
    let ingest_snap = if (scale - golden::GOLDEN_SCALE).abs() < 1e-12 {
        eprintln!("computing ingest checkpoint/resume snapshot at scale {scale}...");
        Some((
            ingest::ingest_golden_file(&dir),
            ingest::snapshot_ingest(scale),
        ))
    } else {
        None
    };
    // The sampled-path golden is pinned at its own scale/budget; like the
    // ingest golden it only participates in the default pinned run.
    let sampled_snap = if (scale - golden::GOLDEN_SCALE).abs() < 1e-12 {
        eprintln!(
            "computing sampled-path pipeline snapshot at scale {}...",
            golden::SAMPLED_GOLDEN_SCALE
        );
        Some((
            golden::sampled_golden_file(&dir),
            golden::snapshot_pipeline_sampled(golden::SAMPLED_GOLDEN_SCALE),
        ))
    } else {
        None
    };
    // The forecast golden is likewise pinned at GOLDEN_SCALE only.
    let forecast_snap = if (scale - golden::GOLDEN_SCALE).abs() < 1e-12 {
        eprintln!("computing forecast snapshot at scale {scale}...");
        Some((
            golden::forecast_golden_file(&dir, scale),
            golden::snapshot_forecast(scale),
        ))
    } else {
        None
    };
    if o.bless {
        match golden::write_golden(&dir, &snap) {
            Ok(path) => {
                println!(
                    "blessed {} stage hashes -> {}",
                    snap.stages.len(),
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("failed to write golden file: {e}");
                std::process::exit(1);
            }
        }
        if let Some((path, isnap)) = &ingest_snap {
            match golden::write_golden_at(path, isnap) {
                Ok(()) => println!(
                    "blessed {} ingest hashes -> {}",
                    isnap.stages.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("failed to write ingest golden file: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some((path, ssnap)) = &sampled_snap {
            match golden::write_golden_at(path, ssnap) {
                Ok(()) => println!(
                    "blessed {} sampled-path hashes -> {}",
                    ssnap.stages.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("failed to write sampled-path golden file: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some((path, fsnap)) = &forecast_snap {
            match golden::write_golden_at(path, fsnap) {
                Ok(()) => println!(
                    "blessed {} forecast hashes -> {}",
                    fsnap.stages.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("failed to write forecast golden file: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    let mut drift = Vec::new();
    match golden::compare_golden(&dir, &snap) {
        Ok(()) => {
            for (name, hash) in &snap.stages {
                println!("ok  {name}  {hash}");
            }
            println!(
                "{} stages match {}",
                snap.stages.len(),
                golden::golden_file(&dir, scale).display()
            );
        }
        Err(lines) => drift.extend(lines),
    }
    if let Some((path, isnap)) = &ingest_snap {
        match golden::compare_golden_at(path, isnap) {
            Ok(()) => {
                for (name, hash) in &isnap.stages {
                    println!("ok  {name}  {hash}");
                }
                println!(
                    "{} ingest hashes match {}",
                    isnap.stages.len(),
                    path.display()
                );
            }
            Err(lines) => drift.extend(lines),
        }
    }
    if let Some((path, ssnap)) = &sampled_snap {
        match golden::compare_golden_at(path, ssnap) {
            Ok(()) => {
                for (name, hash) in &ssnap.stages {
                    println!("ok  {name}  {hash}  (sampled)");
                }
                println!(
                    "{} sampled-path hashes match {}",
                    ssnap.stages.len(),
                    path.display()
                );
            }
            Err(lines) => drift.extend(lines),
        }
    }
    if let Some((path, fsnap)) = &forecast_snap {
        match golden::compare_golden_at(path, fsnap) {
            Ok(()) => {
                for (name, hash) in &fsnap.stages {
                    println!("ok  {name}  {hash}");
                }
                println!(
                    "{} forecast hashes match {}",
                    fsnap.stages.len(),
                    path.display()
                );
            }
            Err(lines) => drift.extend(lines),
        }
    }
    if !drift.is_empty() {
        for line in &drift {
            eprintln!("DRIFT  {line}");
        }
        eprintln!("golden drift detected; inspect the change, then re-run with --bless to accept");
        std::process::exit(1);
    }
}

fn cmd_probe(o: &Opts) {
    let ds = o.dataset();
    let window = StudyCalendar::custom(icn_repro::icn_synth::Date::new(2023, 1, 9), o.days);
    let result = run_campaign(&ds, &window, &CampaignConfig::default());
    println!(
        "probed {} antennas over {} days: {} sessions, {} unclassified, {} bad-ULI drops, \
         {:.1} GB aggregated",
        ds.num_antennas(),
        o.days,
        result.sessions,
        result.dropped_unclassified,
        result.dropped_bad_uli,
        result.totals.total() / 1000.0
    );
}
