//! Integration: the analysis pipeline works on data produced through the
//! probe measurement plane (Section 3's collection path), not only on the
//! direct generator — and DPI noise of realistic magnitude does not erase
//! the structure.

use icn_repro::prelude::*;

mod common;

#[test]
fn clustering_recovers_structure_from_probe_data() {
    // Small population, short window: the probe plane synthesises every IP
    // session individually, so keep the volume manageable.
    let ds = common::dataset_at(0.04);
    let window = common::probe_window(3);
    let result = run_campaign(&ds, &window, &CampaignConfig::default());

    // The probe matrix covers the window only; cluster it directly.
    let (live, live_rows) = filter_dead_rows(&result.totals);
    let features = rsca(&live);
    let labels = agglomerate(&features, Linkage::Ward).cut(9);
    let planted: Vec<usize> = live_rows.iter().map(|&i| ds.planted_labels()[i]).collect();
    let ari = adjusted_rand_index(&labels, &planted);
    // A 3-day window plus session/DPI noise is a much weaker signal than
    // the two-month totals; the structure must still be clearly present.
    assert!(ari > 0.45, "probe-plane ARI {ari}");
}

#[test]
fn probe_and_direct_matrices_agree_per_antenna() {
    let ds = common::dataset_at(0.02);
    let window = common::probe_window(2);
    let result = run_campaign(
        &ds,
        &window,
        &CampaignConfig {
            dpi: DpiConfig::perfect(),
            ..CampaignConfig::default()
        },
    );
    let scale = window.num_days() as f64 / ds.calendar.num_days() as f64;
    for a in 0..ds.num_antennas() {
        let direct: f64 = ds.indoor_totals.row(a).iter().sum::<f64>() * scale;
        let probed: f64 = result.totals.row(a).iter().sum();
        assert!(
            (probed - direct).abs() / direct < 0.15,
            "antenna {a}: probe {probed} vs direct {direct}"
        );
    }
}

#[test]
fn suppression_trades_coverage_for_privacy() {
    let ds = common::dataset_at(0.02);
    let window = common::probe_window(2);
    let open = run_campaign(&ds, &window, &CampaignConfig::default());
    let k2 = run_campaign(
        &ds,
        &window,
        &CampaignConfig {
            min_sessions_per_cell: 2,
            ..CampaignConfig::default()
        },
    );
    assert!(k2.suppressed_cells > 0);
    let kept = k2.totals.total() / open.totals.total();
    // Single-session cells are numerous; in this deliberately tiny 2-day
    // window they carry a substantial but not dominant byte share, so
    // suppression must reduce — not annihilate — the coverage.
    assert!(kept > 0.25 && kept < 0.95, "kept byte fraction {kept}");
    // Stricter suppression always keeps less.
    let k5 = run_campaign(
        &ds,
        &window,
        &CampaignConfig {
            min_sessions_per_cell: 5,
            ..CampaignConfig::default()
        },
    );
    assert!(k5.totals.total() <= k2.totals.total());
    assert!(k5.suppressed_cells >= k2.suppressed_cells);
}
