//! The headline invariant of `icn-ingest`: streaming construction of `T`
//! is **bit-identical** to the batch matrix — at any chunk size, any
//! worker-thread count, any bounded reordering, and across checkpoint
//! kill-and-resume cycles.
//!
//! The synthetic record stream telescopes each cell's per-hour volumes so
//! that the canonical ascending-hour fold lands exactly on the batch
//! totals; these tests hold the production pipeline to that contract at
//! two paper-config scales and cross-check it against the independent
//! naive oracle from `icn-testkit`.

use icn_repro::icn_testkit::{
    assert_bits_eq, ingest_via_pipeline, naive_ingest, shuffle_within_blocks,
};
use icn_repro::prelude::*;

mod common;

fn paper_dataset(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::paper().with_scale(scale))
}

/// Drains a record stream into one vector (the "batch view" of the feed).
fn drain(mut stream: RecordStream) -> Vec<HourlyRecord> {
    let mut out = Vec::new();
    loop {
        let chunk = stream.next_chunk(8192).expect("clean stream");
        if chunk.is_empty() {
            return out;
        }
        out.extend(chunk);
    }
}

#[test]
fn streaming_equals_batch_and_oracle_at_scale_005() {
    let ds = paper_dataset(0.05);
    let window = common::probe_window(3);
    let stream = record_stream(&ds, &window);
    let schema = stream.schema();
    let records = drain(stream);
    assert_eq!(records.len() as u64, schema.total_records());

    let got = ingest_via_pipeline(&records, schema, IngestConfig::default());
    assert_eq!(got.stats.quarantined_total(), 0);
    // Headline: the streamed matrix IS the batch matrix, bit for bit.
    assert_bits_eq(
        got.totals.as_slice(),
        ds.indoor_totals.as_slice(),
        "streamed T vs batch T (scale 0.05)",
    );
    // Differential oracle: the independent sequential reference agrees.
    let want = naive_ingest(&records, schema, 2);
    assert_bits_eq(
        want.totals.as_slice(),
        got.totals.as_slice(),
        "oracle totals",
    );
    assert_bits_eq(
        &want.hourly_volume,
        &got.hourly_volume,
        "oracle hourly volume",
    );
    assert_eq!(want.hourly_records, got.hourly_records);
}

#[test]
fn streaming_equals_batch_at_scale_02() {
    let ds = paper_dataset(0.2);
    let window = common::probe_window(1);
    let mut stream = record_stream(&ds, &window);
    let mut pipe = IngestPipeline::new(stream.schema(), IngestConfig::default());
    pipe.run(&mut stream).expect("clean stream");
    let got = pipe.finish();
    assert_eq!(got.stats.quarantined_total(), 0);
    assert_bits_eq(
        got.totals.as_slice(),
        ds.indoor_totals.as_slice(),
        "streamed T vs batch T (scale 0.2)",
    );
}

/// The full determinism matrix — chunk sizes × thread counts — in a single
/// test function, because `ICN_THREADS` is process-global state that must
/// not race with concurrently running tests.
#[test]
fn totals_bits_survive_any_chunk_size_and_thread_count() {
    let ds = paper_dataset(0.05);
    let window = common::probe_window(1);
    let saved = std::env::var("ICN_THREADS").ok();
    let mut reference: Option<IngestResult> = None;
    for &threads in &[1usize, 2, 8] {
        std::env::set_var("ICN_THREADS", threads.to_string());
        for &chunk in &[1usize, 97, 4096] {
            let mut stream = record_stream(&ds, &window);
            let mut pipe = IngestPipeline::new(
                stream.schema(),
                IngestConfig {
                    chunk_size: chunk,
                    ..IngestConfig::default()
                },
            );
            pipe.run(&mut stream).expect("clean stream");
            let got = pipe.finish();
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    let what = format!("chunk {chunk} x threads {threads}");
                    assert_bits_eq(want.totals.as_slice(), got.totals.as_slice(), &what);
                    assert_bits_eq(&want.hourly_volume, &got.hourly_volume, &what);
                    assert_eq!(want.hourly_records, got.hourly_records, "{what}");
                    assert_eq!(want.stats.ok, got.stats.ok, "{what}");
                }
            }
        }
    }
    match saved {
        Some(v) => std::env::set_var("ICN_THREADS", v),
        None => std::env::remove_var("ICN_THREADS"),
    }
    // And the matrix's shared reference is the batch matrix itself.
    assert_bits_eq(
        reference.expect("matrix ran").totals.as_slice(),
        ds.indoor_totals.as_slice(),
        "determinism-matrix reference vs batch T",
    );
}

#[test]
fn bounded_reordering_is_invisible() {
    let ds = paper_dataset(0.05);
    let window = common::probe_window(1);
    let stream = record_stream(&ds, &window);
    let schema = stream.schema();
    let records = drain(stream);
    // Blocks of 256 ≪ records per hour, so every record stays inside the
    // lateness window: the metamorphic transformation must be a no-op.
    let shuffled = shuffle_within_blocks(&records, 256, 0xB10C);
    let got = ingest_via_pipeline(&shuffled, schema, IngestConfig::default());
    assert_eq!(got.stats.quarantined_total(), 0);
    assert_bits_eq(
        got.totals.as_slice(),
        ds.indoor_totals.as_slice(),
        "reordered stream vs batch T",
    );
}

#[test]
fn kill_and_resume_reproduces_the_run_from_any_checkpoint() {
    let ds = paper_dataset(0.05);
    let window = common::probe_window(2);
    let config = IngestConfig {
        chunk_size: 512,
        ..IngestConfig::default()
    };

    let mut straight = IngestPipeline::new(record_stream(&ds, &window).schema(), config);
    let mut stream = record_stream(&ds, &window);
    straight.run(&mut stream).expect("clean stream");
    let final_hash = straight.checkpoint().hash();
    let want = straight.finish();

    for &halt_after in &[1u64, 7, 40] {
        let mut first = IngestPipeline::new(record_stream(&ds, &window).schema(), config);
        let mut stream = record_stream(&ds, &window);
        let finished = first
            .run_until(&mut stream, Some(halt_after))
            .expect("clean stream");
        assert!(!finished, "halt point {halt_after} must be mid-stream");
        // Serialize, drop (the "kill"), and re-parse the checkpoint: the
        // resumed pipeline sees only what survived the round-trip.
        let rendered = first.checkpoint().render();
        drop(first);
        let ck = Checkpoint::parse(&rendered).expect("round-trip checkpoint");
        let consumed = ck.records_consumed;
        let mut resumed = IngestPipeline::from_checkpoint(ck, config).expect("compatible");
        let mut stream = record_stream(&ds, &window);
        stream.skip_records(consumed).expect("skip prefix");
        resumed.run(&mut stream).expect("clean stream");
        assert_eq!(
            resumed.checkpoint().hash(),
            final_hash,
            "final state hash after resume from chunk {halt_after}"
        );
        let got = resumed.finish();
        let what = format!("resume from chunk {halt_after}");
        assert_bits_eq(want.totals.as_slice(), got.totals.as_slice(), &what);
        assert_bits_eq(&want.hourly_volume, &got.hourly_volume, &what);
        assert_eq!(want.hourly_records, got.hourly_records, "{what}");
        assert_eq!(want.stats, got.stats, "{what}");
        assert_eq!(want.records_consumed, got.records_consumed, "{what}");
    }
}
