//! End-to-end integration: the pipeline must *recover* the structure the
//! paper reports from the synthetic campaign — clusters matching planted
//! archetypes, dendrogram group structure, environment monopolies, outdoor
//! concentration — and do so deterministically.

use icn_repro::prelude::*;

mod common;

fn study_fixture() -> (Dataset, IcnStudy) {
    let dataset = common::dataset();
    let study = common::study_for(&dataset);
    (dataset, study)
}

#[test]
fn recovers_nine_archetypes_with_high_ari() {
    let (dataset, study) = study_fixture();
    let planted: Vec<usize> = study
        .live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    let ari = adjusted_rand_index(&study.labels, &planted);
    let nmi = normalized_mutual_info(&study.labels, &planted);
    assert!(ari > 0.8, "ARI {ari}");
    assert!(nmi > 0.8, "NMI {nmi}");
    assert!(purity(&study.labels, &planted) > 0.85);
}

#[test]
fn every_discovered_cluster_maps_to_distinct_archetype() {
    let (dataset, study) = study_fixture();
    let map = study.cluster_to_archetype(&dataset);
    let mut sorted = map.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        9,
        "cluster->archetype map not a bijection: {map:?}"
    );
}

#[test]
fn dendrogram_groups_match_paper_structure() {
    // Cutting at k=3 must reproduce the orange/green/red super-groups:
    // clusters mapping to archetypes of the same group share a k=3 branch.
    let (dataset, study) = study_fixture();
    let coarse = study.dendrogram.cut(3);
    let planted = dataset.planted_labels();
    use std::collections::HashMap;
    // For each archetype group, collect the coarse labels of its antennas.
    let mut group_votes: HashMap<&'static str, HashMap<usize, usize>> = HashMap::new();
    for (pos, &row) in study.live_rows.iter().enumerate() {
        let arch = Archetype::from_id(planted[row]);
        let g = arch.group().label();
        *group_votes
            .entry(g)
            .or_default()
            .entry(coarse[pos])
            .or_default() += 1;
    }
    // Each group's antennas should be concentrated in one coarse cluster.
    let mut majors = Vec::new();
    for (g, votes) in &group_votes {
        let total: usize = votes.values().sum();
        let (major, count) = votes.iter().max_by_key(|(_, &c)| c).unwrap();
        let frac = *count as f64 / total as f64;
        assert!(frac > 0.7, "group {g}: coarse split {votes:?}");
        majors.push(*major);
    }
    majors.sort_unstable();
    majors.dedup();
    assert_eq!(majors.len(), 3, "groups collapsed into same coarse cluster");
}

#[test]
fn consolidation_k9_to_k6_is_consistent_with_tree() {
    let (_, study) = study_fixture();
    // Consolidation map must send all 9 fine clusters onto exactly the
    // coarse labels present at k=6.
    let mut coarse_used: Vec<usize> = study.consolidation.clone();
    coarse_used.sort_unstable();
    coarse_used.dedup();
    assert_eq!(coarse_used.len(), 6);
}

#[test]
fn environment_monopolies_hold() {
    let (dataset, study) = study_fixture();
    let map = study.cluster_to_archetype(&dataset);
    // Transit clusters (archetypes 0/4/7) are composed of metro+train only.
    for (c, &arch) in map.iter().enumerate() {
        let a = Archetype::from_id(arch);
        if matches!(a, Archetype::ParisMetro | Archetype::ProvincialMetro) {
            let comp = study.crosstab.cluster_composition(c);
            let transit = comp[icn_core::env_index(Environment::Metro)]
                + comp[icn_core::env_index(Environment::TrainStation)];
            assert!(transit > 0.8, "cluster {c} ({a:?}): transit {transit}");
        }
        if a == Archetype::Workspace {
            let (env, share) = study.crosstab.dominant_environment(c);
            assert_eq!(env, Environment::Workspace);
            assert!(share > 0.5, "workspace share {share}");
        }
    }
}

#[test]
fn paris_share_statements_hold() {
    let (dataset, study) = study_fixture();
    let map = study.cluster_to_archetype(&dataset);
    for (c, &arch) in map.iter().enumerate() {
        match Archetype::from_id(arch) {
            // ">92% of clusters 0 and 4 antennas are located in Paris".
            Archetype::ParisMetro => assert!(
                study.crosstab.paris_share[c] > 0.9,
                "cluster {c} paris {}",
                study.crosstab.paris_share[c]
            ),
            // Cluster 7 "consists solely of ... non-capital cities".
            Archetype::ProvincialMetro => assert!(
                study.crosstab.paris_share[c] < 0.1,
                "cluster {c} paris {}",
                study.crosstab.paris_share[c]
            ),
            _ => {}
        }
    }
}

#[test]
fn outdoor_antennas_concentrate_in_general_use() {
    let (dataset, study) = study_fixture();
    let map = study.cluster_to_archetype(&dataset);
    let (dom, share) = study.outdoor.dominant;
    assert_eq!(
        Archetype::from_id(map[dom]),
        Archetype::GeneralUse,
        "dominant outdoor cluster is not general-use"
    );
    // The paper reports ~70%; our generator produces the same order.
    assert!(share > 0.55, "dominant share {share}");
    // Transit/stadium/workspace clusters are nearly absent outdoors.
    for (c, &arch) in map.iter().enumerate() {
        let a = Archetype::from_id(arch);
        if matches!(
            a,
            Archetype::ParisMetro
                | Archetype::ParisRail
                | Archetype::ProvincialMetro
                | Archetype::Workspace
        ) {
            assert!(
                study.outdoor.distribution[c] < 0.1,
                "{a:?} outdoor share {}",
                study.outdoor.distribution[c]
            );
        }
    }
}

#[test]
fn outdoor_diversity_is_lower_than_indoor() {
    let (_, study) = study_fixture();
    let indoor = distribution_entropy(&label_distribution(&study.labels, 9));
    let outdoor = distribution_entropy(&study.outdoor.distribution);
    assert!(
        outdoor < 0.6 * indoor,
        "entropy indoor {indoor} outdoor {outdoor}"
    );
}

#[test]
fn surrogate_is_faithful_to_clustering() {
    let (_, study) = study_fixture();
    assert!(
        study.surrogate_accuracy > 0.97,
        "{}",
        study.surrogate_accuracy
    );
    assert!(study.surrogate_oob.unwrap_or(0.0) > 0.8);
}

#[test]
fn shap_identifies_signature_services() {
    // The cluster mapping to the Workspace archetype must rank a
    // work-oriented service among its top SHAP influences with an
    // over-utilisation direction.
    let (dataset, study) = study_fixture();
    let map = study.cluster_to_archetype(&dataset);
    let work_cluster = map
        .iter()
        .position(|&a| a == Archetype::Workspace.id())
        .expect("workspace cluster exists");
    let ex = &study.explanations[work_cluster];
    let names: Vec<&str> = dataset.services.iter().map(|s| s.name).collect();
    let top10: Vec<(&str, Direction)> = ex
        .top(10)
        .iter()
        .map(|i| (names[i.feature], i.direction))
        .collect();
    let has_work_over = top10.iter().any(|(n, d)| {
        matches!(
            *n,
            "Microsoft Teams" | "LinkedIn" | "Outlook Mail" | "Microsoft 365" | "Corporate VPN"
        ) && *d == Direction::OverUtilized
    });
    assert!(has_work_over, "top10 {top10:?}");
}

#[test]
fn full_run_is_deterministic() {
    let d1 = common::dataset();
    let d2 = common::dataset();
    let s1 = common::study_for(&d1);
    let s2 = common::study_for(&d2);
    assert_eq!(s1.labels, s2.labels);
    assert_eq!(s1.outdoor.predicted, s2.outdoor.predicted);
    assert_eq!(s1.surrogate_accuracy, s2.surrogate_accuracy);
    // SHAP rankings identical too.
    for (a, b) in s1.explanations.iter().zip(&s2.explanations) {
        let ta: Vec<usize> = a.top(10).iter().map(|i| i.feature).collect();
        let tb: Vec<usize> = b.top(10).iter().map(|i| i.feature).collect();
        assert_eq!(ta, tb);
    }
}

#[test]
fn clustering_is_bootstrap_stable() {
    // The paper's clusters must be "inherent", i.e. survive resampling:
    // 70% subsamples re-clustered at k = 9 agree with the full partition.
    let (_, study) = study_fixture();
    let result = icn_repro::icn_cluster::bootstrap_stability(
        &study.rsca,
        &study.labels,
        9,
        Linkage::Ward,
        0.7,
        6,
        0xB007,
    );
    assert!(
        result.mean_ari() > 0.8,
        "mean stability {}",
        result.mean_ari()
    );
    assert!(result.min_ari() > 0.6, "min stability {}", result.min_ari());
}
