//! Integration: the Section 6 temporal claims, verified on clusters the
//! pipeline itself discovered (not on planted labels).

use icn_repro::prelude::*;

mod common;

struct Fixture {
    dataset: Dataset,
    study: IcnStudy,
    window: StudyCalendar,
}

fn fixture() -> Fixture {
    let dataset = common::dataset();
    let study = common::study_for(&dataset);
    Fixture {
        dataset,
        study,
        window: StudyCalendar::temporal_window(),
    }
}

fn heatmap_for_archetype(fx: &Fixture, arch: Archetype) -> TemporalHeatmap {
    let map = fx.study.cluster_to_archetype(&fx.dataset);
    let cluster = map
        .iter()
        .position(|&a| a == arch.id())
        .unwrap_or_else(|| panic!("no cluster mapped to {arch:?}"));
    let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = fx
        .study
        .live_rows
        .iter()
        .enumerate()
        .filter(|(pos, _)| fx.study.labels[*pos] == cluster)
        .map(|(_, &row)| (&fx.dataset.antennas[row], fx.dataset.indoor_totals.row(row)))
        .unzip();
    cluster_heatmap(
        &members,
        &rows,
        &fx.dataset.services,
        65,
        &fx.window,
        fx.dataset.root_rng(),
    )
}

#[test]
fn orange_clusters_commute_and_strike() {
    let fx = fixture();
    let hm = heatmap_for_archetype(&fx, Archetype::ParisMetro);
    assert!(hm.commute_ratio() > 1.5, "commute {}", hm.commute_ratio());
    assert!(hm.strike_dip() < 0.35, "strike {}", hm.strike_dip());
    assert!(hm.weekend_ratio() < 0.6, "weekend {}", hm.weekend_ratio());
}

#[test]
fn provincial_metro_strike_is_milder_than_paris() {
    let fx = fixture();
    let paris = heatmap_for_archetype(&fx, Archetype::ParisMetro);
    let prov = heatmap_for_archetype(&fx, Archetype::ProvincialMetro);
    assert!(
        prov.strike_dip() > 2.0 * paris.strike_dip(),
        "paris {} provincial {}",
        paris.strike_dip(),
        prov.strike_dip()
    );
}

#[test]
fn workspace_cluster_idle_weekends() {
    let fx = fixture();
    let hm = heatmap_for_archetype(&fx, Archetype::Workspace);
    assert!(hm.weekend_ratio() < 0.25, "weekend {}", hm.weekend_ratio());
    // "traffic almost evenly distributed from 10am to 8pm" — no commute
    // bimodality in the red group.
    assert!(hm.commute_ratio() < 1.4, "commute {}", hm.commute_ratio());
}

#[test]
fn retail_cluster_works_weekends() {
    let fx = fixture();
    let hm = heatmap_for_archetype(&fx, Archetype::RetailHospitality);
    assert!(
        hm.weekend_ratio() > 0.5,
        "retail weekend ratio {}",
        hm.weekend_ratio()
    );
}

#[test]
fn event_clusters_are_bursty_diurnal_ones_are_not() {
    let fx = fixture();
    let stadium = heatmap_for_archetype(&fx, Archetype::ProvincialStadium);
    let retail = heatmap_for_archetype(&fx, Archetype::RetailHospitality);
    let general = heatmap_for_archetype(&fx, Archetype::GeneralUse);
    assert!(
        stadium.burstiness() > 3.0 * retail.burstiness(),
        "stadium {} retail {}",
        stadium.burstiness(),
        retail.burstiness()
    );
    assert!(
        stadium.burstiness() > 3.0 * general.burstiness(),
        "stadium {} general {}",
        stadium.burstiness(),
        general.burstiness()
    );
}

#[test]
fn paris_arena_nba_night_visible() {
    // Figure 10f: a burst on the evening of 19 Jan 2023 at Paris arenas.
    let fx = fixture();
    let hm = heatmap_for_archetype(&fx, Archetype::ParisArena);
    let strike = fx.window.day_index(StudyCalendar::strike_day()).unwrap();
    let evening = hm.values[strike][21];
    // Compare with the same hour two days before (no event scheduled for
    // every site simultaneously except the pinned night).
    let quiet = hm.values[strike - 2][21];
    assert!(
        evening > 2.0 * (quiet + 0.01),
        "NBA night {evening} vs quiet {quiet}"
    );
}

#[test]
fn teams_follows_office_hours_netflix_hotel_nights() {
    let fx = fixture();
    let map = fx.study.cluster_to_archetype(&fx.dataset);
    let svc =
        |name: &str| icn_synth::services::index_of(&fx.dataset.services, name).expect("service");
    let service_hm = |arch: Archetype, j: usize| {
        let cluster = map.iter().position(|&a| a == arch.id()).unwrap();
        let (members, totals): (Vec<&icn_synth::Antenna>, Vec<f64>) = fx
            .study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| fx.study.labels[*pos] == cluster)
            .map(|(_, &row)| {
                (
                    &fx.dataset.antennas[row],
                    fx.dataset.indoor_totals.get(row, j),
                )
            })
            .unzip();
        service_heatmap(
            &members,
            &totals,
            &fx.dataset.services[j],
            65,
            &fx.window,
            fx.dataset.root_rng(),
        )
    };

    // Figure 11g: Teams heavy in office hours at the workspace cluster.
    let teams = service_hm(Archetype::Workspace, svc("Microsoft Teams"));
    let weekday = |hm: &TemporalHeatmap, d: usize| !hm.window.date(d).weekday().is_weekend();
    let work = teams.mean_at_hour(11, |d| weekday(&teams, d));
    let night = teams.mean_at_hour(22, |d| weekday(&teams, d));
    assert!(
        work > 3.0 * (night + 1e-9),
        "teams work {work} night {night}"
    );

    // Figure 11h: Netflix at the retail/hotel cluster peaks at night...
    let netflix_hotel = service_hm(Archetype::RetailHospitality, svc("Netflix"));
    let hotel_night = netflix_hotel.mean_at_hour(22, |_| true);
    let hotel_morning = netflix_hotel.mean_at_hour(9, |_| true);
    assert!(
        hotel_night > hotel_morning,
        "netflix hotel night {hotel_night} vs morning {hotel_morning}"
    );

    // ...while at the workspace cluster it is confined to lunch hours.
    let netflix_office = service_hm(Archetype::Workspace, svc("Netflix"));
    let lunch = netflix_office.mean_at_hour(12, |d| weekday(&netflix_office, d));
    let afternoon = netflix_office.mean_at_hour(16, |d| weekday(&netflix_office, d));
    assert!(
        lunch > 2.0 * (afternoon + 1e-9),
        "netflix office lunch {lunch} vs afternoon {afternoon}"
    );
}

#[test]
fn waze_peaks_after_events_in_green_group() {
    // Figure 11e: Waze lags the social-media burst by ~2 h at arenas.
    let fx = fixture();
    let map = fx.study.cluster_to_archetype(&fx.dataset);
    let cluster = map
        .iter()
        .position(|&a| a == Archetype::ParisArena.id())
        .unwrap();
    let j_waze = icn_synth::services::index_of(&fx.dataset.services, "Waze").unwrap();
    let j_snap = icn_synth::services::index_of(&fx.dataset.services, "Snapchat").unwrap();
    let series = |j: usize| {
        let (members, totals): (Vec<&icn_synth::Antenna>, Vec<f64>) = fx
            .study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| fx.study.labels[*pos] == cluster)
            .map(|(_, &row)| {
                (
                    &fx.dataset.antennas[row],
                    fx.dataset.indoor_totals.get(row, j),
                )
            })
            .unzip();
        service_heatmap(
            &members,
            &totals,
            &fx.dataset.services[j],
            65,
            &fx.window,
            fx.dataset.root_rng(),
        )
    };
    let waze = series(j_waze);
    let snap = series(j_snap);
    let strike = fx.window.day_index(StudyCalendar::strike_day()).unwrap();
    // Snapchat peaks at the event start (19-21h); Waze later (21-23h).
    let snap_early: f64 = (19..=20).map(|h| snap.values[strike][h]).sum();
    let waze_early: f64 = (19..=20).map(|h| waze.values[strike][h]).sum();
    let waze_late: f64 = (21..=23).map(|h| waze.values[strike][h]).sum();
    assert!(
        waze_late > waze_early,
        "waze late {waze_late} vs early {waze_early}"
    );
    assert!(snap_early > 0.0);
}
