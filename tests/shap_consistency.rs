//! Integration ablation B5: the three SHAP estimators must agree.
//!
//! TreeSHAP (the paper's choice) is validated against brute-force exact
//! Shapley in unit tests; here we close the triangle at the integration
//! level — KernelSHAP run against the *pipeline's* surrogate forest must
//! approximate TreeSHAP, and local accuracy must hold on real study data.

use icn_repro::prelude::*;

mod common;
use icn_shap::{forest_base_value, kernel_shap, KernelShapConfig};

fn small_study() -> (Dataset, IcnStudy) {
    let dataset = common::dataset_at(0.04);
    let study = common::study_for(&dataset);
    (dataset, study)
}

#[test]
fn treeshap_local_accuracy_on_study_data() {
    let (_, study) = small_study();
    let base = forest_base_value(&study.surrogate);
    for i in (0..study.rsca.rows()).step_by(37) {
        let x = study.rsca.row(i);
        let phi = forest_shap(&study.surrogate, x);
        let pred = study.surrogate.predict_proba(x);
        for c in 0..study.surrogate.n_classes {
            let total: f64 = phi.iter().map(|p| p[c]).sum::<f64>() + base[c];
            assert!(
                (total - pred[c]).abs() < 1e-9,
                "row {i} class {c}: {total} vs {}",
                pred[c]
            );
        }
    }
}

#[test]
fn treeshap_and_kernelshap_agree_on_top_features() {
    // Kernel SHAP with background imputation estimates the *interventional*
    // Shapley values while TreeSHAP (path-dependent) conditions on the
    // tree's training distribution — they differ in general but must agree
    // on the dominant features and their signs for well-separated data.
    let (_, study) = small_study();
    let class = 0usize;
    // Pick a member of class 0.
    let idx = study
        .labels
        .iter()
        .position(|&l| l == class)
        .expect("member");
    let x = study.rsca.row(idx);

    let tree_phi = forest_shap(&study.surrogate, x);
    let tree_class: Vec<f64> = tree_phi.iter().map(|p| p[class]).collect();

    let surrogate = &study.surrogate;
    let model = move |v: &[f64]| surrogate.predict_proba(v)[class];
    let (kern_phi, _) = kernel_shap(
        &model,
        x,
        &study.rsca,
        &KernelShapConfig {
            n_samples: 3000,
            max_background: 24,
            seed: 9,
        },
    );

    // Rank agreement on the top-5 TreeSHAP features.
    let top5 = icn_stats::rank::top_k(&tree_class.iter().map(|v| v.abs()).collect::<Vec<_>>(), 5);
    let mut sign_matches = 0usize;
    let mut kernel_ranks_high = 0usize;
    let kern_abs: Vec<f64> = kern_phi.iter().map(|v| v.abs()).collect();
    let kern_order = icn_stats::rank::argsort_desc(&kern_abs);
    for &f in &top5 {
        if tree_class[f].signum() == kern_phi[f].signum() || kern_phi[f].abs() < 1e-4 {
            sign_matches += 1;
        }
        let kern_rank = kern_order.iter().position(|&g| g == f).unwrap();
        if kern_rank < 20 {
            kernel_ranks_high += 1;
        }
    }
    assert!(sign_matches >= 4, "sign agreement {sign_matches}/5");
    assert!(
        kernel_ranks_high >= 3,
        "kernel ranks top TreeSHAP features highly: {kernel_ranks_high}/5"
    );
}

#[test]
fn shap_importance_correlates_with_gini_importance() {
    // Second-opinion check: services dominating SHAP for any cluster must
    // overlap with forest Gini importance.
    let (_, study) = small_study();
    let gini = icn_forest::gini_importance(&study.surrogate);
    let gini_top: std::collections::HashSet<usize> =
        icn_stats::rank::top_k(&gini, 15).into_iter().collect();
    let mut hits = 0usize;
    let mut total = 0usize;
    for ex in &study.explanations {
        for inf in ex.top(3) {
            total += 1;
            if gini_top.contains(&inf.feature) {
                hits += 1;
            }
        }
    }
    let frac = hits as f64 / total as f64;
    assert!(frac > 0.4, "SHAP/Gini top-feature overlap {frac}");
}

#[test]
fn shap_values_are_finite_and_bounded() {
    // Probability outputs bound Shapley values to [-1, 1].
    let (_, study) = small_study();
    for i in (0..study.rsca.rows()).step_by(53) {
        let phi = forest_shap(&study.surrogate, study.rsca.row(i));
        for row in &phi {
            for &v in row {
                assert!(v.is_finite());
                assert!((-1.0..=1.0).contains(&v), "phi {v}");
            }
        }
    }
}
