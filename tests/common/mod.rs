//! Shared fixtures for the top-level integration tests.
//!
//! Every integration binary used to open with its own copy of the same
//! three lines (generate a small synthetic campaign, run the fast study
//! config); they now share these helpers so a change to the canonical
//! test-scale setup happens in exactly one place. Each test binary
//! compiles this module independently, so helpers unused by a given
//! binary are expected.
#![allow(dead_code)]

use icn_repro::prelude::*;
use icn_synth::Date;

/// The canonical small synthetic campaign used across the suite.
pub fn dataset() -> Dataset {
    Dataset::generate(SynthConfig::small())
}

/// The small campaign shrunk to `scale` of its population.
pub fn dataset_at(scale: f64) -> Dataset {
    Dataset::generate(SynthConfig::small().with_scale(scale))
}

/// The small campaign re-rolled under a different seed.
pub fn dataset_seeded(seed: u64) -> Dataset {
    Dataset::generate(SynthConfig::small().with_seed(seed))
}

/// Runs the fast study configuration over `dataset`.
pub fn study_for(dataset: &Dataset) -> IcnStudy {
    IcnStudy::run(dataset, StudyConfig::fast())
}

/// The canonical fixture: small campaign plus its fast study.
pub fn study() -> (Dataset, IcnStudy) {
    let ds = dataset();
    let st = study_for(&ds);
    (ds, st)
}

/// Scaled-down fixture for tests that synthesise per-session data.
pub fn study_at(scale: f64) -> (Dataset, IcnStudy) {
    let ds = dataset_at(scale);
    let st = study_for(&ds);
    (ds, st)
}

/// A short probe-campaign window starting on the study's first full
/// Monday (2023-01-09), as used by the measurement-plane tests.
pub fn probe_window(days: usize) -> StudyCalendar {
    StudyCalendar::custom(Date::new(2023, 1, 9), days)
}
