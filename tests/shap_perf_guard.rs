//! Perf-smoke guard for the stage-3 SHAP kernel.
//!
//! The default test only checks that the instrumentation surfaces the
//! throughput gauges the bench harness depends on. The `#[ignore]`d
//! timing guard pins the scale-0.05 `shap_batch` wall time under a
//! ceiling an order of magnitude above the post-optimization figure, so
//! a regression back toward the recursive kernel (~10x slower) trips it
//! while ordinary CI noise does not. CI runs it via
//! `cargo test --release --test shap_perf_guard -- --ignored`.

use icn_repro::icn_obs;
use icn_repro::prelude::*;

use icn_obs::BenchReport;
use std::sync::Mutex;

/// The metrics registry is process-global; serialize the tests that
/// reset/enable it so `--include-ignored` runs stay race-free.
static LOCK: Mutex<()> = Mutex::new(());

/// Wall-time ceiling for `stage3_surrogate/shap_batch` at scale 0.05.
/// The allocation-free kernel lands around 0.2 s on one worker; the old
/// recursive kernel was ~10x that, so 2 s separates the two regimes
/// with wide noise margins on both sides.
const SHAP_BATCH_CEILING_MS: f64 = 2_000.0;

fn metered_report(scale: f64) -> BenchReport {
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = Dataset::generate(SynthConfig::paper().with_scale(scale));
    let _study = IcnStudy::run(&ds, StudyConfig::paper());
    let snap = obs.snapshot();
    obs.disable();
    obs.reset();
    BenchReport::build(&snap, "shap_perf_guard", scale)
}

#[test]
fn metered_run_exports_throughput_gauges() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_report(0.02);
    for gauge in ["shap.samples_per_sec", "forest.predict_rows_per_sec"] {
        let v = report.gauges.get(gauge).copied().unwrap_or_default();
        assert!(v > 0.0, "gauge {gauge} missing or zero: {v}");
    }
    assert!(
        report.spans.contains_key("stage3_surrogate/shap_batch"),
        "shap_batch span missing: {:?}",
        report.spans.keys()
    );
}

/// Timing guard — inherently machine-sensitive, so not part of the
/// default suite. The CI perf-smoke job runs it explicitly.
#[test]
#[ignore = "timing-sensitive; run explicitly (CI perf-smoke job does)"]
fn shap_batch_stays_under_scale_005_ceiling() {
    let _guard = LOCK.lock().unwrap();
    // Best of three, so a one-off scheduler hiccup cannot fail the job.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let report = metered_report(0.05);
        let (_, wall) = report.spans["stage3_surrogate/shap_batch"];
        best = best.min(wall.as_secs_f64() * 1e3);
    }
    assert!(
        best < SHAP_BATCH_CEILING_MS,
        "shap_batch took {best:.1} ms at scale 0.05 (ceiling {SHAP_BATCH_CEILING_MS} ms)"
    );
}
