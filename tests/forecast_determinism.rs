//! Thread- and ordering-invariance for the stage-6 forecast subsystem:
//! the full study with `run_forecast` on must produce **bit-identical**
//! series, forecasts, backtest scores and anomaly verdicts at any
//! `ICN_THREADS`, and when the totals matrix is rebuilt by the streaming
//! ingest pipeline from a block-shuffled record feed — parallelism and
//! feed order are execution details, never answer details.
//!
//! Environment discipline: `ICN_THREADS` is process-global, so the whole
//! matrix lives in a single `#[test]` that saves and restores it (the
//! same convention as `icn-cluster/tests/ward_parallel.rs`).

use icn_repro::icn_forecast::ForecastReport;
use icn_repro::icn_testkit::{ingest_via_pipeline, shuffle_within_blocks};
use icn_repro::prelude::*;

mod common;

struct EnvGuard {
    saved: Option<String>,
}

impl EnvGuard {
    fn capture() -> EnvGuard {
        EnvGuard {
            saved: std::env::var("ICN_THREADS").ok(),
        }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        // Restore even if an assertion unwinds mid-matrix.
        match &self.saved {
            Some(v) => std::env::set_var("ICN_THREADS", v),
            None => std::env::remove_var("ICN_THREADS"),
        }
    }
}

/// Exact bit-level fingerprint of a forecast report: every float is
/// compared via `to_bits`, every index set verbatim.
#[allow(clippy::type_complexity)]
fn fingerprint(r: &ForecastReport) -> Vec<(usize, usize, usize, Vec<u64>, Vec<usize>)> {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    r.clusters
        .iter()
        .map(|c| {
            let mut floats = bits(&c.series);
            floats.extend(bits(&c.forecast));
            floats.extend(bits(&c.naive));
            floats.extend(bits(&c.ets));
            floats.extend(bits(&c.forest));
            floats.extend(bits(&c.anomalies.scores));
            floats.extend(bits(&c.anomalies.template));
            for s in [c.backtest.naive, c.backtest.ets, c.backtest.forest] {
                floats.push(s.mae.to_bits());
                floats.push(s.smape.to_bits());
            }
            (
                c.cluster,
                c.n_antennas,
                c.busy_hour,
                floats,
                c.anomalies.flagged.clone(),
            )
        })
        .collect()
}

fn drain(mut stream: RecordStream) -> Vec<HourlyRecord> {
    let mut out = Vec::new();
    loop {
        let chunk = stream.next_chunk(8192).expect("clean stream");
        if chunk.is_empty() {
            return out;
        }
        out.extend(chunk);
    }
}

#[test]
fn forecast_is_bit_identical_across_threads_and_shuffled_ingest() {
    let _guard = EnvGuard::capture();
    let ds = Dataset::generate(SynthConfig::small());
    let config = || StudyConfig {
        run_forecast: true,
        ..StudyConfig::fast()
    };

    // Baseline: pinned single thread.
    std::env::set_var("ICN_THREADS", "1");
    let base = IcnStudy::run(&ds, config());
    let base_fp = fingerprint(base.forecast.as_ref().expect("forecast stage ran"));
    assert!(!base_fp.is_empty());

    for threads in ["2", "8"] {
        std::env::set_var("ICN_THREADS", threads);
        let st = IcnStudy::run(&ds, config());
        let fp = fingerprint(st.forecast.as_ref().expect("forecast stage ran"));
        assert_eq!(
            fp, base_fp,
            "forecast output drifted at ICN_THREADS={threads}"
        );
    }

    // Ordering: rebuild `T` through the streaming ingest pipeline from a
    // block-shuffled record feed (bounded reordering stays inside the
    // lateness window, so ingest reproduces the batch matrix bit-exactly)
    // and run the study from that matrix — still at 8 threads.
    let window = common::probe_window(2);
    let stream = record_stream(&ds, &window);
    let schema = stream.schema();
    let records = drain(stream);
    let shuffled = shuffle_within_blocks(&records, 256, 0x7EC7);
    let ingest = ingest_via_pipeline(&shuffled, schema, IngestConfig::default());
    assert_eq!(ingest.stats.quarantined_total(), 0);
    let st = IcnStudy::from_ingest(&ds, &ingest, config()).expect("ingest-fed study");
    let fp = fingerprint(st.forecast.as_ref().expect("forecast stage ran"));
    assert_eq!(fp, base_fp, "forecast output drifted under shuffled ingest");
}
