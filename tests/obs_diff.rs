//! Tests of the `icn obs diff` perf-regression gate, at both the library
//! level (`icn_obs::diff_reports`) and the CLI level (exit codes), using
//! the blessed scale-0.05 baseline under `tests/golden/` and a doctored
//! regression fixture derived from it.
//!
//! The fixtures are real reports: `bench_smoke005.json` is a recorded
//! `icn run --scale 0.05` and `bench_regression_fixture.json` is the same
//! report with stage3's wall tripled and the `shap.chunk_ns` histogram
//! shifted four octaves up — the two metric kinds the gate must catch.

use icn_repro::icn_obs::{diff_reports, BenchReport, BenchReportSet, DiffStatus, DiffThresholds};
use std::process::Command;

fn load(name: &str) -> BenchReport {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    BenchReport::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn self_diff_of_the_blessed_baseline_passes() {
    let a = load("bench_smoke005.json");
    let report = diff_reports(&a, &a, &DiffThresholds::default());
    assert!(report.passed(), "self-diff failed:\n{}", report.render());
}

#[test]
fn doctored_regression_fixture_fails_the_gate() {
    let a = load("bench_smoke005.json");
    let b = load("bench_regression_fixture.json");
    let report = diff_reports(&a, &b, &DiffThresholds::default());
    assert!(report.failures() > 0, "regression fixture slipped through");
    // Both the wall regression and the histogram regression must be
    // caught independently.
    let failed: Vec<&str> = report
        .lines
        .iter()
        .filter(|l| l.status == DiffStatus::Fail)
        .map(|l| l.metric.as_str())
        .collect();
    assert!(
        failed.iter().any(|m| m.contains("stage3_surrogate")),
        "stage3 wall regression missed: {failed:?}"
    );
    assert!(
        failed.iter().any(|m| m.contains("shap.chunk_ns")),
        "shap.chunk_ns p99 regression missed: {failed:?}"
    );
}

#[test]
fn reversed_direction_is_a_speedup_and_passes() {
    // The gate is asymmetric by design: the doctored report as *baseline*
    // makes the real report look like a speedup, which never fails.
    let a = load("bench_regression_fixture.json");
    let b = load("bench_smoke005.json");
    let report = diff_reports(&a, &b, &DiffThresholds::default());
    assert!(report.passed(), "speedup flagged:\n{}", report.render());
}

#[test]
fn cli_exit_codes_match_the_gate() {
    let golden = format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"));
    let run = |a: &str, b: &str| {
        Command::new(env!("CARGO_BIN_EXE_icn"))
            .args(["obs", "diff"])
            .arg(format!("{golden}/{a}"))
            .arg(format!("{golden}/{b}"))
            .output()
            .expect("spawn icn")
    };
    let ok = run("bench_smoke005.json", "bench_smoke005.json");
    assert!(
        ok.status.success(),
        "self-diff exited nonzero:\n{}",
        String::from_utf8_lossy(&ok.stdout)
    );
    let bad = run("bench_smoke005.json", "bench_regression_fixture.json");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "regression diff must exit 1:\n{}",
        String::from_utf8_lossy(&bad.stdout)
    );
    let usage = Command::new(env!("CARGO_BIN_EXE_icn"))
        .args(["obs", "bogus"])
        .output()
        .expect("spawn icn");
    assert_eq!(usage.status.code(), Some(2), "unknown obs subcommand");
}

/// The `icn-obs/v3` memory fixtures: `bench_mem_smoke.json` is a recorded
/// metered `icn run --scale 0.05` (ICN_THREADS=1) and the regression
/// fixture is the same report with the allocator peak (and VmHWM)
/// doubled — everything else identical, so only the peak gate can fire.
#[test]
fn v3_memory_report_round_trips_and_self_diffs_clean() {
    let a = load("bench_mem_smoke.json");
    let mem = a
        .memory
        .as_ref()
        .expect("v3 golden carries a memory section");
    assert!(mem.peak_bytes > 0);
    assert!(!mem.spans.is_empty(), "span attribution missing");
    // Round trip through render + parse preserves the memory section.
    let text = a.to_json().to_pretty();
    let back = BenchReport::parse(&text).expect("re-parse rendered v3");
    assert_eq!(back.memory, a.memory);
    let report = diff_reports(&a, &a, &DiffThresholds::default());
    assert!(report.passed(), "v3 self-diff failed:\n{}", report.render());
}

#[test]
fn doctored_peak_fixture_fails_the_asymmetric_peak_gate() {
    let a = load("bench_mem_smoke.json");
    let b = load("bench_mem_regression_fixture.json");
    let report = diff_reports(&a, &b, &DiffThresholds::default());
    assert!(report.failures() > 0, "2x peak growth slipped through");
    assert!(
        report
            .lines
            .iter()
            .any(|l| l.metric == "mem:allocator_peak_bytes" && l.status == DiffStatus::Fail),
        "peak gate did not fire:\n{}",
        report.render()
    );
    // Asymmetric: the same pair reversed is a shrinkage and passes.
    let reversed = diff_reports(&b, &a, &DiffThresholds::default());
    assert!(
        reversed.passed(),
        "peak shrinkage flagged:\n{}",
        reversed.render()
    );
}

/// v2 -> v3 is graceful: a baseline without a memory section diffs
/// against a v3 candidate (and vice versa) as an informational line,
/// never a failure — old blessed baselines keep gating wall and
/// histograms unchanged.
#[test]
fn missing_memory_section_diffs_informationally() {
    let v2 = load("bench_smoke005.json");
    assert!(v2.memory.is_none(), "v2 golden grew a memory section");
    let v3 = load("bench_mem_smoke.json");
    let mut v3_stripped = v3.clone();
    v3_stripped.memory = None;
    // Identical walls, one side missing memory: informational, passing.
    for (a, b) in [(&v3_stripped, &v3), (&v3, &v3_stripped)] {
        let report = diff_reports(a, b, &DiffThresholds::default());
        assert!(
            report.passed(),
            "one-sided memory diff failed:\n{}",
            report.render()
        );
        assert!(
            report
                .lines
                .iter()
                .any(|l| l.metric == "mem:allocator_peak_bytes" && l.status == DiffStatus::Info),
            "missing-section info line absent:\n{}",
            report.render()
        );
    }
}

/// The CLI peak gate end to end: default threshold (1.5x) rejects the
/// doctored 2x fixture with exit 1; `--max-peak-ratio 3` admits it.
#[test]
fn cli_max_peak_ratio_flag_gates_and_relaxes() {
    let golden = format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"));
    let run = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_icn"))
            .args(["obs", "diff"])
            .arg(format!("{golden}/bench_mem_smoke.json"))
            .arg(format!("{golden}/bench_mem_regression_fixture.json"))
            .args(extra)
            .output()
            .expect("spawn icn")
    };
    let strict = run(&[]);
    assert_eq!(
        strict.status.code(),
        Some(1),
        "2x peak must fail the default gate:\n{}",
        String::from_utf8_lossy(&strict.stdout)
    );
    let relaxed = run(&["--max-peak-ratio", "3"]);
    assert!(
        relaxed.status.success(),
        "relaxed peak gate still failed:\n{}",
        String::from_utf8_lossy(&relaxed.stdout)
    );
}

/// `icn obs diff` pairs `icn-bench-set/1` files (from `--threads-sweep`)
/// by thread count: a legacy single baseline gates the matching member of
/// a sweep candidate, two sweeps diff pairwise, and files with no common
/// configuration fail loudly instead of silently passing.
#[test]
fn cli_diff_pairs_sweep_sets_by_thread_count() {
    let base = load("bench_smoke005.json");
    let at_threads = |threads: usize| {
        let mut r = base.clone();
        r.env.threads = threads;
        r
    };
    let dir = std::env::temp_dir().join("icn_obs_diff_sets");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let write = |name: &str, set: &BenchReportSet| {
        let path = dir.join(name);
        set.write_to_file(path.to_str().unwrap())
            .expect("write set");
        path
    };
    let sweep12 = write(
        "sweep12.json",
        &BenchReportSet {
            reports: vec![at_threads(1), at_threads(2)],
        },
    );
    let sweep2 = write(
        "sweep2.json",
        &BenchReportSet {
            reports: vec![at_threads(2)],
        },
    );
    let sweep8 = write(
        "sweep8.json",
        &BenchReportSet {
            reports: vec![at_threads(8), at_threads(16)],
        },
    );
    let golden = format!(
        "{}/tests/golden/bench_smoke005.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let run = |a: &std::path::Path, b: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_icn"))
            .args(["obs", "diff"])
            .arg(a)
            .arg(b)
            .output()
            .expect("spawn icn")
    };
    // Single baseline vs sweep candidate: its thread count picks the
    // matching member, and the self-identical walls pass.
    let ok = run(std::path::Path::new(&golden), &sweep12);
    assert!(
        ok.status.success(),
        "single-vs-set diff failed:\n{}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );
    // Sweep vs sweep: only the shared threads=2 configuration is
    // compared; the unmatched baseline member drops out.
    let pairwise = run(&sweep12, &sweep2);
    assert!(
        pairwise.status.success(),
        "set-vs-set diff failed:\n{}{}",
        String::from_utf8_lossy(&pairwise.stdout),
        String::from_utf8_lossy(&pairwise.stderr)
    );
    // Disjoint thread sets have nothing to compare — that is a gate
    // failure, not a silent pass.
    let disjoint = run(&sweep12, &sweep8);
    assert_eq!(
        disjoint.status.code(),
        Some(1),
        "disjoint sweeps must fail:\n{}",
        String::from_utf8_lossy(&disjoint.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
