//! Integration: robustness against measurement-feed faults.
//!
//! Real probes drop antennas and DPI classifiers confuse services. The
//! pipeline must (a) guard against degenerate inputs loudly, (b) survive
//! dead antennas via filtering, and (c) degrade gracefully — not
//! catastrophically — under classifier noise.

use icn_repro::prelude::*;

mod common;
use icn_synth::noise;

#[test]
fn dead_antennas_are_filtered_not_crashed() {
    let dataset = common::dataset_at(0.05);
    let mut t = dataset.indoor_totals.clone();
    let mut rng = Rng::seed_from(3);
    let killed = noise::kill_rows(&mut t, 0.1, &mut rng);
    assert!(!killed.is_empty());

    let (live, live_rows) = filter_dead_rows(&t);
    assert_eq!(live.rows() + killed.len(), t.rows());
    for k in &killed {
        assert!(!live_rows.contains(k));
    }
    // RCA on the filtered matrix is clean.
    let r = rsca(&live);
    assert!(!r.has_non_finite());
}

#[test]
fn nan_poisoning_is_detected_before_clustering() {
    let dataset = common::dataset_at(0.05);
    let mut t = dataset.indoor_totals.clone();
    let mut rng = Rng::seed_from(5);
    noise::poison_nan(&mut t, 4, &mut rng);
    assert!(t.has_non_finite());
    // The clustering substrate refuses non-finite features loudly.
    let result = std::panic::catch_unwind(|| {
        let _ = agglomerate(&t, Linkage::Ward);
    });
    assert!(result.is_err(), "agglomerate must reject NaN input");
}

#[test]
fn misclassification_noise_degrades_gracefully() {
    let dataset = common::dataset();
    let planted_all = dataset.planted_labels();

    let ari_with_noise = |fraction: f64| -> f64 {
        let mut t = dataset.indoor_totals.clone();
        let mut rng = Rng::seed_from(11);
        noise::misclassify(&mut t, fraction, &mut rng);
        let (live, live_rows) = filter_dead_rows(&t);
        let features = rsca(&live);
        let labels = agglomerate(&features, Linkage::Ward).cut(9);
        let planted: Vec<usize> = live_rows.iter().map(|&i| planted_all[i]).collect();
        adjusted_rand_index(&labels, &planted)
    };

    let clean = ari_with_noise(0.0);
    let mild = ari_with_noise(0.1);
    let heavy = ari_with_noise(0.6);
    assert!(clean > 0.8, "clean {clean}");
    // 10% uniform DPI confusion is aggressive for low-volume services (a
    // texting app receiving 10% of Netflix's bytes is hugely inflated in
    // RSCA terms); the structure must survive recognisably, not perfectly.
    assert!(mild > 0.35, "mild noise ARI {mild}");
    assert!(mild > 3.0 * heavy.max(0.05), "mild {mild} vs heavy {heavy}");
    // Heavy confusion pushes towards uniform shares -> structure fades,
    // and the degradation is monotone-ish.
    assert!(heavy < mild + 0.05, "heavy {heavy} vs mild {mild}");
}

#[test]
fn multiplicative_noise_tolerated() {
    let dataset = common::dataset();
    let mut t = dataset.indoor_totals.clone();
    let mut rng = Rng::seed_from(13);
    noise::multiplicative_noise(&mut t, 0.3, &mut rng);
    let (live, live_rows) = filter_dead_rows(&t);
    let features = rsca(&live);
    let labels = agglomerate(&features, Linkage::Ward).cut(9);
    let planted: Vec<usize> = live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    let ari = adjusted_rand_index(&labels, &planted);
    assert!(ari > 0.55, "ARI under 30% lognormal noise: {ari}");
}

#[test]
fn surrogate_robust_to_unseen_noisy_antennas() {
    // Train the surrogate on the clean study, then classify noisy copies
    // of the same antennas — predictions should mostly stick.
    let dataset = common::dataset_at(0.05);
    let study = common::study_for(&dataset);
    let mut t = dataset.indoor_totals.select_rows(&study.live_rows);
    let mut rng = Rng::seed_from(17);
    noise::multiplicative_noise(&mut t, 0.2, &mut rng);
    let noisy_features = rsca(&t);
    let noisy_pred = study.surrogate.predict_batch(&noisy_features);
    let stable = noisy_pred
        .iter()
        .zip(&study.labels)
        .filter(|(a, b)| a == b)
        .count() as f64
        / study.labels.len() as f64;
    assert!(stable > 0.7, "prediction stability under noise: {stable}");
}
