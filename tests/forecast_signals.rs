//! End-to-end planted-signal recovery: the `icn-forecast` detector sees
//! only the noisy per-cluster median series and must recover the
//! generator's planted temporal anomalies — the 19 Jan strike collapse
//! and the pinned city-wide event nights — against the exact
//! `icn_synth::signals` ground truth, unsupervised, at **F1 ≥ 0.9**.
//!
//! The control direction is pinned too: re-synthesising the same clusters
//! signal-free (same antennas, totals and noise stream, planted one-offs
//! stripped) must flag *nothing*. And because the detector consumes only
//! the series, its output is invariant under cluster relabeling and
//! member permutation — the same metamorphic contract the clustering
//! stages honour.

use icn_repro::icn_synth::{
    cluster_planted_hours, cluster_planted_hours_any, Antenna, Archetype, Dataset, PlantedHours,
    StudyCalendar, SynthConfig,
};
use icn_repro::icn_testkit::{invert_permutation, permutation, set_f1};
use icn_repro::prelude::*;

/// Archetypes with planted signals strong enough to survive the
/// cluster-median + majority-vote aggregation: the commuter/office
/// archetypes carry the strike dip, the two stadium archetypes the
/// shared fixture-night bursts.
const SIGNAL_ARCHETYPES: [Archetype; 6] = [
    Archetype::ParisMetro,
    Archetype::ParisRail,
    Archetype::ProvincialMetro,
    Archetype::Workspace,
    Archetype::ParisArena,
    Archetype::ProvincialStadium,
];

fn fixture() -> (Dataset, StudyCalendar) {
    (
        Dataset::generate(SynthConfig::small()),
        StudyCalendar::temporal_window(),
    )
}

fn full_days() -> usize {
    StudyCalendar::paper_period().num_days()
}

fn archetype_members(d: &Dataset, arch: Archetype) -> (Vec<&Antenna>, Vec<&[f64]>) {
    let idx: Vec<usize> = (0..d.antennas.len())
        .filter(|&i| d.antennas[i].archetype == arch)
        .collect();
    let members: Vec<&Antenna> = idx.iter().map(|&i| &d.antennas[i]).collect();
    let rows: Vec<&[f64]> = idx.iter().map(|&i| d.indoor_totals.row(i)).collect();
    (members, rows)
}

fn detect_archetype(
    d: &Dataset,
    w: &StudyCalendar,
    arch: Archetype,
) -> (Anomalies, PlantedHours, usize) {
    let (members, rows) = archetype_members(d, arch);
    assert!(!members.is_empty(), "{arch:?} has no antennas");
    let s = icn_repro::icn_forecast::cluster_series(
        0,
        &members,
        &rows,
        &d.services,
        full_days(),
        w,
        d.root_rng(),
    );
    let got = detect(&s.values, &DetectorConfig::default());
    let want = cluster_planted_hours(&members, w, d.root_rng());
    (got, want, members.len())
}

/// The headline pin: per cluster, the flagged hour set recovers the
/// planted ground truth at **F1 ≥ 0.9** — over *every* archetype cluster
/// of the population, not just the signal-bearing ones.
///
/// Scoring is asymmetric, matching what the cross-antenna median can
/// possibly carry: **recall** is against the majority-vote labels (an
/// anomaly planted at most member antennas must always be found) while
/// **precision** is against the any-member union labels (a sub-majority
/// fixture that moves the median is a real planted shift, so flagging it
/// is not a false alarm — but flagging an hour *no* member plants is).
#[test]
fn detector_recovers_planted_hours_at_f1_090() {
    let (d, w) = fixture();
    for arch in Archetype::ALL {
        let (members, rows) = archetype_members(&d, arch);
        assert!(!members.is_empty(), "{arch:?} has no antennas");
        let s = icn_repro::icn_forecast::cluster_series(
            0,
            &members,
            &rows,
            &d.services,
            full_days(),
            &w,
            d.root_rng(),
        );
        let got = detect(&s.values, &DetectorConfig::default());
        let majority = cluster_planted_hours(&members, &w, d.root_rng()).hours();
        let union = cluster_planted_hours_any(&members, &w, d.root_rng()).hours();
        let (precision, _, _) = set_f1(&got.flagged, &union);
        // Recall is vacuous when nothing survives the majority vote.
        let recall = if majority.is_empty() {
            1.0
        } else {
            set_f1(&got.flagged, &majority).1
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        assert!(
            f1 >= 0.9 && precision >= 0.9 && recall >= 0.9,
            "{arch:?}: F1 {f1:.3} (precision {precision:.3} vs {} union hours, \
             recall {recall:.3} vs {} majority hours, {} flagged)",
            union.len(),
            majority.len(),
            got.flagged.len()
        );
        if SIGNAL_ARCHETYPES.contains(&arch) {
            assert!(
                !majority.is_empty(),
                "{arch:?}: expected majority-planted hours"
            );
        }
    }
}

/// The strike is a *dip* and every commuter cluster must catch all of it:
/// each planted strike hour is flagged with negative z.
#[test]
fn strike_dip_is_fully_recovered_on_commuter_clusters() {
    let (d, w) = fixture();
    let strike = w
        .day_index(StudyCalendar::strike_day())
        .expect("strike inside window");
    for arch in [
        Archetype::ParisMetro,
        Archetype::ParisRail,
        Archetype::ProvincialMetro,
        Archetype::Workspace,
    ] {
        let (got, want, _) = detect_archetype(&d, &w, arch);
        let dips = got.dips();
        assert!(!want.dips.is_empty(), "{arch:?}: no planted dips");
        for &t in &want.dips {
            assert!(
                dips.contains(&t),
                "{arch:?}: planted strike hour {t} (day {}, {:02}:00) not flagged as dip",
                t / 24,
                t % 24
            );
        }
        // Sanity: the planted dips are the strike day.
        assert!(want.dips.iter().all(|&t| t / 24 == strike));
    }
}

/// Every planted cluster-majority burst hour (the pinned city-wide event
/// nights) is flagged with positive z on the event archetypes.
#[test]
fn event_bursts_are_fully_recovered_on_event_clusters() {
    let (d, w) = fixture();
    for arch in [Archetype::ParisArena, Archetype::ProvincialStadium] {
        let (got, want, _) = detect_archetype(&d, &w, arch);
        let bursts = got.bursts();
        assert!(!want.bursts.is_empty(), "{arch:?}: no planted bursts");
        for &t in &want.bursts {
            assert!(
                bursts.contains(&t),
                "{arch:?}: planted burst hour {t} (day {}, {:02}:00) not flagged as burst",
                t / 24,
                t % 24
            );
        }
    }
}

/// Signal-free control: re-synthesising the very same clusters with the
/// planted one-offs stripped (same totals, same noise stream) must flag
/// nothing anywhere — the detector's false-positive floor is zero on
/// every cluster of the population.
#[test]
fn signal_free_resynthesis_flags_nothing() {
    let (d, w) = fixture();
    for arch in Archetype::ALL {
        let (members, rows) = archetype_members(&d, arch);
        if members.is_empty() {
            continue;
        }
        let s = icn_repro::icn_forecast::cluster_series_signal_free(
            0,
            &members,
            &rows,
            &d.services,
            full_days(),
            &w,
            d.root_rng(),
        );
        let got = detect(&s.values, &DetectorConfig::default());
        assert!(
            got.flagged.is_empty(),
            "{arch:?}: {} hours flagged on the signal-free control (max |z| {:.2})",
            got.flagged.len(),
            got.scores.iter().fold(0.0f64, |m, z| m.max(z.abs()))
        );
    }
}

/// Metamorphic invariance: the detector consumes only the series, so its
/// verdict is bit-identical under cluster relabeling (the id is carried,
/// not used) and any permutation of the member antennas (the per-hour
/// median is order-free).
#[test]
fn detection_is_invariant_under_relabel_and_member_permutation() {
    let (d, w) = fixture();
    let (members, rows) = archetype_members(&d, Archetype::ParisMetro);
    let base = icn_repro::icn_forecast::cluster_series(
        0,
        &members,
        &rows,
        &d.services,
        full_days(),
        &w,
        d.root_rng(),
    );
    let base_det = detect(&base.values, &DetectorConfig::default());
    let base_truth = cluster_planted_hours(&members, &w, d.root_rng());

    let mut rng = icn_repro::icn_stats::Rng::seed_from(0xF0_12EC);
    let perm = permutation(&mut rng, members.len());
    let inv = invert_permutation(&perm);
    let p_members: Vec<&Antenna> = inv.iter().map(|&i| members[i]).collect();
    let p_rows: Vec<&[f64]> = inv.iter().map(|&i| rows[i]).collect();
    // A different cluster id stands in for an arbitrary relabeling.
    let permuted = icn_repro::icn_forecast::cluster_series(
        7,
        &p_members,
        &p_rows,
        &d.services,
        full_days(),
        &w,
        d.root_rng(),
    );
    assert_eq!(permuted.cluster, 7);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&base.values),
        bits(&permuted.values),
        "median series must be bit-identical under member permutation"
    );
    let perm_det = detect(&permuted.values, &DetectorConfig::default());
    assert_eq!(base_det.flagged, perm_det.flagged);
    assert_eq!(bits(&base_det.scores), bits(&perm_det.scores));
    // The ground-truth oracle is permutation-invariant too (majority vote
    // over an unordered member set).
    let perm_truth = cluster_planted_hours(&p_members, &w, d.root_rng());
    assert_eq!(base_truth, perm_truth);
}
