//! Known-signal fixtures for the temporal toolkit (Section 6 figures).
//!
//! Rather than trusting the synthesiser end to end, these tests feed
//! hand-built signals whose rhythm, period, and peaks are known in closed
//! form — a pure 24 h sine, a weekday/weekend square wave, a heatmap with
//! a planted strike-day dip — and assert the exact statistic each
//! analysis function must read off.

use icn_repro::icn_core::{autocorrelation, dominant_period, Rhythm, TemporalHeatmap};
use icn_repro::prelude::*;

mod common;

const TAU: f64 = std::f64::consts::TAU;

/// A noiseless sine with a 24 h period peaking at `peak_hour` each day.
fn pure_sine(days: usize, peak_hour: usize) -> Vec<f64> {
    (0..days * 24)
        .map(|h| 10.0 + 5.0 * ((h as f64 - peak_hour as f64) / 24.0 * TAU).cos())
        .collect()
}

/// A weekly square wave: high on weekday working hours, low otherwise.
/// `start_weekday` is the weekday index (0 = Monday) of hour 0.
fn weekday_square(weeks: usize, start_weekday: usize) -> Vec<f64> {
    (0..weeks * 168)
        .map(|h| {
            let day = (start_weekday + h / 24) % 7;
            let hour = h % 24;
            if day < 5 && (8..=18).contains(&hour) {
                1.0
            } else {
                0.2
            }
        })
        .collect()
}

#[test]
fn sine_has_daily_rhythm_and_period_24() {
    let s = pure_sine(14, 18);
    // The biased sample ACF of an exact 24 h-periodic series is
    // (n − lag) / n at every multiple of the period.
    let n = s.len() as f64;
    for lag in [24usize, 48, 168] {
        let expected = (n - lag as f64) / n;
        let got = autocorrelation(&s, lag);
        assert!(
            (got - expected).abs() < 1e-9,
            "lag {lag}: acf {got} vs closed form {expected}"
        );
    }
    assert_eq!(dominant_period(&s, 12, 36), Some(24));
    let rhythm = Rhythm::of(&s);
    assert!(rhythm.is_diurnal(), "pure sine must register as diurnal");
    // Bias makes the weekly coefficient top out at (n − 168)/n = 0.5 here.
    assert!(rhythm.daily > 0.9 && rhythm.weekly > 0.45);
}

#[test]
fn sine_peak_lands_on_the_planted_hour() {
    for peak in [6usize, 12, 18, 21] {
        let s = pure_sine(7, peak);
        let day = &s[..24];
        let argmax = (0..24)
            .max_by(|&a, &b| day[a].partial_cmp(&day[b]).unwrap())
            .unwrap();
        assert_eq!(argmax, peak, "planted peak hour not recovered");
    }
}

#[test]
fn square_wave_has_weekly_period_168() {
    let s = weekday_square(6, 0);
    // Searching well away from the daily harmonic finds the weekly one.
    assert_eq!(dominant_period(&s, 100, 200), Some(168));
    let rhythm = Rhythm::of(&s);
    assert!(
        rhythm.weekly > rhythm.daily,
        "weekday/weekend structure repeats weekly, not daily: {rhythm:?}"
    );
    // At the weekly lag, the square wave realigns exactly.
    let n = s.len() as f64;
    assert!((autocorrelation(&s, 168) - (n - 168.0) / n).abs() < 1e-9);
}

/// Builds a heatmap directly from planted per-day/per-hour values over a
/// window starting Monday 2023-01-09 (so it contains the 2023-01-19
/// strike Thursday plus a peer Thursday on the 12th).
fn planted_heatmap(days: usize, value: impl Fn(usize, usize) -> f64) -> TemporalHeatmap {
    let window = common::probe_window(days);
    let values: Vec<Vec<f64>> = (0..days)
        .map(|d| (0..24).map(|h| value(d, h)).collect())
        .collect();
    TemporalHeatmap {
        window,
        values,
        n_antennas: 1,
    }
}

#[test]
fn strike_day_dip_is_read_off_exactly() {
    let window = common::probe_window(14);
    let strike = window.day_index(StudyCalendar::strike_day()).unwrap();
    // Flat unit traffic, except the strike Thursday runs at 30%.
    let hm = planted_heatmap(14, |d, _| if d == strike { 0.3 } else { 1.0 });
    let dip = hm.strike_dip();
    assert!(
        (dip - 0.3).abs() < 1e-12,
        "planted 0.3 dip, strike_dip() read {dip}"
    );
    // The flat control has no dip at all.
    let flat = planted_heatmap(14, |_, _| 1.0);
    assert!((flat.strike_dip() - 1.0).abs() < 1e-12);
}

#[test]
fn commute_peaks_dominate_planted_commuter_signal() {
    // Plant morning/evening commute peaks on every day; the commute ratio
    // is exactly peak/base on weekdays by construction.
    let hm = planted_heatmap(14, |_, h| {
        if [7, 8, 9, 17, 18, 19].contains(&h) {
            1.0
        } else {
            0.25
        }
    });
    assert!(
        (hm.commute_ratio() - 4.0).abs() < 1e-12,
        "commute ratio {} for a planted 4:1 peak",
        hm.commute_ratio()
    );
    // A flat profile scores exactly 1.
    let flat = planted_heatmap(14, |_, _| 0.7);
    assert!((flat.commute_ratio() - 1.0).abs() < 1e-12);

    // And the planted peak hours are literally the argmax hours.
    let day = hm.day(0);
    let argmax = (0..24)
        .max_by(|&a, &b| day[a].partial_cmp(&day[b]).unwrap())
        .unwrap();
    assert!([7, 8, 9, 17, 18, 19].contains(&argmax));
}

#[test]
fn weekend_ratio_reads_planted_weekend_share() {
    // Window starts on a Monday; days 5, 6, 12, 13 are weekends. Weekend
    // daytime runs at 20% of weekday daytime.
    let window = common::probe_window(14);
    let weekend: Vec<usize> = window
        .iter_days()
        .filter(|(_, date)| date.weekday().is_weekend())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(weekend, vec![5, 6, 12, 13]);
    let hm = planted_heatmap(14, |d, _| if weekend.contains(&d) { 0.2 } else { 1.0 });
    assert!(
        (hm.weekend_ratio() - 0.2).abs() < 1e-12,
        "weekend ratio {} for a planted 0.2 share",
        hm.weekend_ratio()
    );
}
