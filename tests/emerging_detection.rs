//! Integration: the paper's §7 forecast — new service profiles create new
//! clusters that the existing methodology detects without modification.

use icn_repro::prelude::*;

mod common;
use icn_synth::emerging::{inject_emerging, EMERGING_LABEL};

#[test]
fn injected_emerging_profile_is_recovered_as_tenth_cluster() {
    let base = common::dataset();
    let n_inject = (base.num_antennas() / 20).max(8);
    let emerging = inject_emerging(&base, n_inject, 0xE317);

    let (t, live_rows) = filter_dead_rows(&emerging.dataset.indoor_totals);
    let features = rsca(&t);
    let labels10 = agglomerate(&features, Linkage::Ward).cut(10);
    let truth: Vec<usize> = live_rows.iter().map(|&i| emerging.labels[i]).collect();

    // Ten-class recovery stays strong.
    let ari = adjusted_rand_index(&labels10, &truth);
    assert!(ari > 0.8, "10-class ARI {ari}");

    // The injected antennas concentrate in a single discovered cluster,
    // and dominate it.
    let mut capture = [0usize; 10];
    for (pos, &t_label) in truth.iter().enumerate() {
        if t_label == EMERGING_LABEL {
            capture[labels10[pos]] += 1;
        }
    }
    let best = icn_stats::rank::argmax(&capture.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let captured = capture[best];
    let cluster_size = labels10.iter().filter(|&&l| l == best).count();
    assert!(
        captured as f64 / n_inject as f64 > 0.8,
        "captured {captured}/{n_inject}"
    );
    assert!(
        captured as f64 / cluster_size as f64 > 0.8,
        "purity {captured}/{cluster_size}"
    );
}

#[test]
fn without_injection_k10_adds_no_new_structure() {
    // Control: on the base population, forcing k = 10 just splits an
    // existing archetype — the extra cluster has no distinct identity
    // (its members' planted labels already exist elsewhere).
    let base = common::dataset();
    let (t, live_rows) = filter_dead_rows(&base.indoor_totals);
    let features = rsca(&t);
    let history = agglomerate(&features, Linkage::Ward);
    let planted: Vec<usize> = live_rows
        .iter()
        .map(|&i| base.planted_labels()[i])
        .collect();
    let ari9 = adjusted_rand_index(&history.cut(9), &planted);
    let ari10 = adjusted_rand_index(&history.cut(10), &planted);
    assert!(
        ari10 <= ari9 + 1e-9,
        "k=10 must not beat k=9 on 9-archetype truth: {ari10} vs {ari9}"
    );
}
