//! Golden-snapshot regression gate for the full pipeline.
//!
//! The canonical hashes of every stage's output at the reference scale
//! live under `tests/golden/`. Any numeric change anywhere in the
//! pipeline — transform, clustering, k-selection, surrogate, SHAP,
//! environments, outdoor comparison — moves at least one stage hash and
//! fails `blessed_golden_matches_current_pipeline`. If the change is
//! intentional, re-bless with `cargo run --bin icn -- testkit --bless`
//! and commit the updated JSON; the per-stage oracle suites then explain
//! *what* changed.

use icn_repro::icn_testkit::golden::{GOLDEN_SCALE, SAMPLED_GOLDEN_SCALE};
use icn_repro::icn_testkit::{
    compare_golden, compare_golden_at, default_golden_dir, golden_file, render_golden,
    sampled_golden_file, snapshot_pipeline, snapshot_pipeline_sampled, write_golden,
};

mod common;

#[test]
fn blessed_golden_matches_current_pipeline() {
    let snap = snapshot_pipeline(GOLDEN_SCALE);
    if let Err(drift) = compare_golden(&default_golden_dir(), &snap) {
        panic!(
            "pipeline output drifted from tests/golden (re-bless with \
             `cargo run --bin icn -- testkit --bless` if intentional):\n  {}",
            drift.join("\n  ")
        );
    }
}

#[test]
fn blessed_sampled_golden_matches_current_pipeline() {
    // The scalable (sample-cluster-extend) stage-2 path has its own
    // golden, pinned at a scale/budget pair that forces a strict sample.
    // Drift in the sampler, the centroid extension or the refinement loop
    // fails here without disturbing the exact-path hashes above.
    let snap = snapshot_pipeline_sampled(SAMPLED_GOLDEN_SCALE);
    let path = sampled_golden_file(&default_golden_dir());
    if let Err(drift) = compare_golden_at(&path, &snap) {
        panic!(
            "sampled-path output drifted from tests/golden (re-bless with \
             `cargo run --bin icn -- testkit --bless` if intentional):\n  {}",
            drift.join("\n  ")
        );
    }
}

#[test]
fn sampled_snapshot_is_deterministic() {
    let a = snapshot_pipeline_sampled(SAMPLED_GOLDEN_SCALE);
    let b = snapshot_pipeline_sampled(SAMPLED_GOLDEN_SCALE);
    assert_eq!(
        a.stages, b.stages,
        "sampled path must be seed-deterministic"
    );
}

#[test]
fn snapshot_is_deterministic() {
    let a = snapshot_pipeline(GOLDEN_SCALE);
    let b = snapshot_pipeline(GOLDEN_SCALE);
    assert_eq!(a.stages, b.stages, "same scale, same hashes — always");
}

#[test]
fn bless_round_trip_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("icn-golden-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = snapshot_pipeline(GOLDEN_SCALE);

    let path = write_golden(&dir, &snap).unwrap();
    let first = std::fs::read(&path).unwrap();
    write_golden(&dir, &snap).unwrap();
    let second = std::fs::read(&path).unwrap();
    assert_eq!(first, second, "re-blessing must be byte-identical");
    assert_eq!(path, golden_file(&dir, snap.scale));
    assert_eq!(first, render_golden(&snap).into_bytes());

    // A freshly blessed directory always passes its own check.
    assert!(compare_golden(&dir, &snap).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drift_reports_name_the_stage() {
    // Corrupt one stage hash in a temp copy and check the comparator
    // pinpoints it rather than failing opaquely.
    let dir = std::env::temp_dir().join(format!("icn-golden-drift-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut snap = snapshot_pipeline(GOLDEN_SCALE);
    write_golden(&dir, &snap).unwrap();

    let victim = snap.stages[2].0.clone();
    snap.stages[2].1 = format!("{:016x}", 0xdead_beefu64);
    let drift = compare_golden(&dir, &snap).unwrap_err();
    assert!(
        drift.iter().any(|d| d.contains(&victim)),
        "drift lines {drift:?} must name stage {victim}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
