//! Golden-snapshot gate for the ingest subsystem.
//!
//! `tests/golden/ingest_scale005.json` pins, at the reference scale, the
//! mid-stream checkpoint hash, the canonical hash of the final ingest
//! result, and every stage hash of a study built **from the streamed
//! matrix** (after a checkpoint kill-and-resume in the middle of the
//! stream). Any change to record generation, validation order, the
//! accumulator fold, or the checkpoint format moves at least one hash.
//! If the change is intentional, re-bless with
//! `cargo run --bin icn -- testkit --bless` and commit the JSON.

use icn_repro::icn_testkit::golden::GOLDEN_SCALE;
use icn_repro::icn_testkit::{
    compare_golden_at, default_golden_dir, ingest_golden_file, snapshot_ingest, write_golden_at,
};

mod common;

#[test]
fn blessed_ingest_golden_matches_current_subsystem() {
    let snap = snapshot_ingest(GOLDEN_SCALE);
    let path = ingest_golden_file(&default_golden_dir());
    if let Err(drift) = compare_golden_at(&path, &snap) {
        panic!(
            "ingest output drifted from {} (re-bless with \
             `cargo run --bin icn -- testkit --bless` if intentional):\n  {}",
            path.display(),
            drift.join("\n  ")
        );
    }

    // A freshly blessed copy of the same snapshot always passes its own
    // check, byte-identically across re-blessings.
    let dir = std::env::temp_dir().join(format!("icn-ingest-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tmp = dir.join("ingest_scale005.json");
    write_golden_at(&tmp, &snap).unwrap();
    let first = std::fs::read(&tmp).unwrap();
    write_golden_at(&tmp, &snap).unwrap();
    assert_eq!(first, std::fs::read(&tmp).unwrap());
    assert!(compare_golden_at(&tmp, &snap).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
