//! Probe-plane determinism and aggregate consistency (Section 3's
//! collection path).
//!
//! Replay: a seeded campaign is a pure function of (dataset, window,
//! config) — rerunning it must reproduce every output bit-for-bit, and
//! changing only the seed must not. Consistency: the ULI grouping stage
//! is a partition of the session stream, so no byte may be lost or
//! double-counted between the raw records and the aggregated cube.

use icn_repro::icn_probe::{
    antenna_for_uli, run_campaign, sessions_for_cell_hour, uli_for_antenna, CampaignConfig,
    DpiConfig, DpiLabel, HourlyCube,
};
use icn_repro::prelude::*;

mod common;

#[test]
fn campaign_replays_bit_identically_under_same_seed() {
    let ds = common::dataset_at(0.02);
    let window = common::probe_window(2);
    let a = run_campaign(&ds, &window, &CampaignConfig::default());
    let b = run_campaign(&ds, &window, &CampaignConfig::default());
    assert_eq!(a.totals.as_slice(), b.totals.as_slice(), "totals drifted");
    assert_eq!(a.sessions, b.sessions);
    assert_eq!(a.dropped_bad_uli, b.dropped_bad_uli);
    assert_eq!(a.dropped_unclassified, b.dropped_unclassified);
    assert_eq!(a.suppressed_cells, b.suppressed_cells);
}

#[test]
fn campaign_depends_on_its_seed() {
    let ds = common::dataset_at(0.02);
    let window = common::probe_window(2);
    let a = run_campaign(&ds, &window, &CampaignConfig::default());
    let b = run_campaign(
        &ds,
        &window,
        &CampaignConfig {
            seed: 0xDEAD_BEEF,
            ..CampaignConfig::default()
        },
    );
    assert_ne!(
        a.totals.as_slice(),
        b.totals.as_slice(),
        "different probe seeds must synthesise different session streams"
    );
}

#[test]
fn uli_round_trips_for_every_antenna() {
    // The numbering plan spans several tracking areas at full scale; the
    // grouping key must invert exactly for every antenna id.
    let n = 600;
    for a in 0..n {
        let uli = uli_for_antenna(a);
        assert_eq!(
            antenna_for_uli(uli, n),
            Some(a),
            "antenna {a} lost in ULI round-trip (tac={}, eci={:#x})",
            uli.tac,
            uli.eci
        );
    }
}

#[test]
fn aggregation_preserves_bytes_across_uli_grouping() {
    // Synthesise raw session records for a handful of cells, ingest them
    // through the ULI-grouped cube, and check the books balance: total MB
    // in equals total MB out, per antenna and overall.
    let ds = common::dataset_at(0.02);
    let n_antennas = ds.num_antennas();
    let n_services = ds.services.len();
    let mut rng = Rng::seed_from(42);
    let mut cube = HourlyCube::new(n_antennas, n_services, 24);

    let mut expected_mb = vec![0.0f64; n_antennas];
    let mut expected_records = 0usize;
    for a in 0..n_antennas.min(12) {
        for (s, service) in ds.services.iter().enumerate().take(6) {
            let volume = rng.uniform(5.0, 200.0);
            let records = sessions_for_cell_hour(a, s, service, a % 24, volume, &mut rng);
            for r in &records {
                expected_mb[a] += r.bytes_total() as f64 / 1e6;
                cube.ingest(r, DpiLabel::Service(r.service));
            }
            expected_records += records.len();
        }
    }
    assert!(expected_records > 0);
    assert_eq!(cube.dropped_bad_uli, 0, "all planned ULIs must resolve");

    let totals = cube.totals_matrix();
    for a in 0..n_antennas {
        let got: f64 = totals.row(a).iter().sum();
        assert!(
            (got - expected_mb[a]).abs() < 1e-6 * (1.0 + expected_mb[a]),
            "antenna {a}: cube has {got} MB, records carried {}",
            expected_mb[a]
        );
        // The hourly view must agree with the totals view cell-for-cell.
        let series: f64 = cube.antenna_series(a).iter().sum();
        assert!(
            (series - got).abs() < 1e-9 * (1.0 + got),
            "antenna {a}: hourly series {series} vs totals {got}"
        );
    }
}

#[test]
fn campaign_totals_conserve_volume_against_ground_truth() {
    // With a perfect classifier and no suppression, the probe plane only
    // re-bins ground-truth traffic: the window's grand total must match
    // the generator's, up to the documented session-rounding tolerance.
    let ds = common::dataset_at(0.02);
    let window = common::probe_window(2);
    let result = run_campaign(
        &ds,
        &window,
        &CampaignConfig {
            dpi: DpiConfig::perfect(),
            ..CampaignConfig::default()
        },
    );
    assert_eq!(result.dropped_bad_uli, 0);
    assert_eq!(result.dropped_unclassified, 0);
    let scale = window.num_days() as f64 / ds.calendar.num_days() as f64;
    let truth = ds.indoor_totals.total() * scale;
    let probed = result.totals.total();
    assert!(
        (probed - truth).abs() / truth < 0.15,
        "grand total {probed} MB vs ground truth {truth} MB"
    );
}
