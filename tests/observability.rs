//! End-to-end tests of the icn-obs observability layer threaded through
//! the pipeline: report schema, stage coverage, wall-time sanity and
//! counter determinism.
//!
//! Every test drives the process-global registry, so they serialize on a
//! shared lock (tests within one binary run concurrently by default).

use icn_repro::icn_obs::{self, BenchReport, PIPELINE_STAGES};
use icn_repro::prelude::*;

mod common;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs the full study at test scale with the registry enabled and
/// returns the report built from the resulting snapshot.
fn metered_run(seed: u64) -> BenchReport {
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_seeded(seed);
    let st = common::study_for(&ds);
    assert_eq!(st.cluster_sizes().len(), 9);
    let report = BenchReport::build(&obs.snapshot(), "observability-test", ds.config.scale);
    obs.disable();
    obs.reset();
    report
}

#[test]
fn report_round_trips_through_schema() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    let text = report.to_json().to_pretty();
    let back = BenchReport::parse(&text).expect("schema-valid report");
    assert_eq!(back.run_id, "observability-test");
    assert_eq!(back.counters, report.counters);
    assert_eq!(back.stages.len(), report.stages.len());
}

#[test]
fn stages_are_exactly_the_documented_pipeline() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    // Only the study ran (generation happened before enable is irrelevant
    // here: generate IS under the registry too), so top-level spans are
    // the 5 pipeline stages plus dataset generation.
    let mut got: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    got.retain(|n| *n != "generate");
    assert_eq!(got, PIPELINE_STAGES.to_vec(), "stage set/order mismatch");
}

#[test]
fn stage_walls_are_positive_and_counters_nonzero() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    for stage in &report.stages {
        assert!(
            stage.wall_ms > 0.0,
            "stage {} has non-positive wall {}",
            stage.name,
            stage.wall_ms
        );
    }
    // Spot-check that the stage-scoped counters landed where documented.
    let s1 = report.stage("stage1_transform").expect("stage1 present");
    assert!(s1.counters["transform.live_rows"] > 0);
    let s2 = report.stage("stage2_cluster").expect("stage2 present");
    assert!(s2.counters["cluster.merges"] > 0);
    assert!(s2.counters["cluster.pairs"] > 0);
    let s3 = report.stage("stage3_surrogate").expect("stage3 present");
    assert!(s3.counters["forest.trees"] > 0);
    assert!(s3.counters["shap.tree_walks"] > 0);
    let s5 = report.stage("stage5_outdoor").expect("stage5 present");
    assert!(s5.counters["outdoor.antennas"] > 0);
}

#[test]
fn same_seed_runs_produce_identical_counters() {
    let _guard = LOCK.lock().unwrap();
    let a = metered_run(42);
    let b = metered_run(42);
    assert_eq!(a.counters, b.counters, "counters must be deterministic");
    // Span call-counts (not walls) must match too.
    let calls = |r: &BenchReport| -> Vec<(String, u64)> {
        r.spans.iter().map(|(p, &(c, _))| (p.clone(), c)).collect()
    };
    assert_eq!(calls(&a), calls(&b));
}

#[test]
fn k_sweep_computes_the_condensed_matrix_once() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset();
    let config = StudyConfig {
        run_k_sweep: true,
        ..StudyConfig::fast()
    };
    let st = IcnStudy::run(&ds, config);
    let snap = obs.snapshot();
    obs.disable();
    obs.reset();
    assert!(!st.k_sweep.is_empty(), "sweep must actually run");
    // The Figure 2 sweep needs Euclidean distances while Ward works in
    // squared ones; deriving the former by entry-wise sqrt means the
    // O(N²·M) pairwise pass runs exactly once per study. This pins the
    // fix for the double computation (the span used to report 2 calls).
    let (calls, _) = snap.spans["stage2_cluster/condensed"];
    assert_eq!(calls, 1, "pairwise distances computed more than once");
}

#[test]
fn ingest_counters_flow_into_reports() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_at(0.2);
    let window = common::probe_window(2);
    let mut stream = record_stream(&ds, &window);
    let mut pipe = IngestPipeline::new(stream.schema(), IngestConfig::default());
    pipe.run(&mut stream).expect("clean stream");
    let ok = pipe.stats().ok;
    let report = BenchReport::build(&obs.snapshot(), "ingest-test", 0.2);
    obs.disable();
    obs.reset();
    let stage = report.stage("ingest").expect("ingest stage present");
    assert!(stage.wall_ms > 0.0);
    assert_eq!(stage.counters["ingest.records_ok"], ok);
    assert_eq!(stage.counters["ingest.records_quarantined"], 0);
    assert!(stage.counters["ingest.chunks"] > 0);
    assert!(report.gauges.contains_key("ingest.records_per_sec"));
}

#[test]
fn probe_campaign_counters_flow_into_reports() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_at(0.01);
    let window = common::probe_window(2);
    let result = run_campaign(&ds, &window, &CampaignConfig::default());
    let report = BenchReport::build(&obs.snapshot(), "probe-test", 0.01);
    obs.disable();
    obs.reset();
    let probe = report.stage("probe_campaign").expect("probe stage present");
    assert!(probe.wall_ms > 0.0);
    assert_eq!(probe.counters["probe.sessions"], result.sessions as u64);
    assert_eq!(probe.counters["probe.antennas"], ds.num_antennas() as u64);
}
