//! End-to-end tests of the icn-obs observability layer threaded through
//! the pipeline: report schema, stage coverage, wall-time sanity and
//! counter determinism.
//!
//! Every test drives the process-global registry, so they serialize on a
//! shared lock (tests within one binary run concurrently by default).

use icn_repro::icn_obs::{self, BenchReport, Snapshot, PIPELINE_STAGES};
use icn_repro::prelude::*;

mod common;
use std::collections::BTreeSet;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Runs the full study with the registry enabled and returns the raw
/// snapshot (span tree included). `threads` pins `ICN_THREADS` for the
/// run; the previous value is restored afterwards.
fn metered_snapshot(seed: u64, threads: Option<&str>) -> Snapshot {
    let saved = std::env::var("ICN_THREADS").ok();
    if let Some(t) = threads {
        std::env::set_var("ICN_THREADS", t);
    }
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_seeded(seed);
    let st = common::study_for(&ds);
    assert_eq!(st.cluster_sizes().len(), 9);
    let snap = obs.snapshot();
    obs.disable();
    obs.reset();
    match saved {
        Some(v) => std::env::set_var("ICN_THREADS", v),
        None => std::env::remove_var("ICN_THREADS"),
    }
    snap
}

/// Runs the full study at test scale with the registry enabled and
/// returns the report built from the resulting snapshot.
fn metered_run(seed: u64) -> BenchReport {
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_seeded(seed);
    let st = common::study_for(&ds);
    assert_eq!(st.cluster_sizes().len(), 9);
    let report = BenchReport::build(&obs.snapshot(), "observability-test", ds.config.scale);
    obs.disable();
    obs.reset();
    report
}

#[test]
fn report_round_trips_through_schema() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    let text = report.to_json().to_pretty();
    let back = BenchReport::parse(&text).expect("schema-valid report");
    assert_eq!(back.run_id, "observability-test");
    assert_eq!(back.counters, report.counters);
    assert_eq!(back.stages.len(), report.stages.len());
}

#[test]
fn stages_are_exactly_the_documented_pipeline() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    // Only the study ran (generation happened before enable is irrelevant
    // here: generate IS under the registry too), so top-level spans are
    // the 5 pipeline stages plus dataset generation.
    let mut got: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    got.retain(|n| *n != "generate");
    assert_eq!(got, PIPELINE_STAGES.to_vec(), "stage set/order mismatch");
}

#[test]
fn stage_walls_are_positive_and_counters_nonzero() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    for stage in &report.stages {
        assert!(
            stage.wall_ms > 0.0,
            "stage {} has non-positive wall {}",
            stage.name,
            stage.wall_ms
        );
    }
    // Spot-check that the stage-scoped counters landed where documented.
    let s1 = report.stage("stage1_transform").expect("stage1 present");
    assert!(s1.counters["transform.live_rows"] > 0);
    let s2 = report.stage("stage2_cluster").expect("stage2 present");
    assert!(s2.counters["cluster.merges"] > 0);
    assert!(s2.counters["cluster.pairs"] > 0);
    let s3 = report.stage("stage3_surrogate").expect("stage3 present");
    assert!(s3.counters["forest.trees"] > 0);
    assert!(s3.counters["shap.tree_walks"] > 0);
    let s5 = report.stage("stage5_outdoor").expect("stage5 present");
    assert!(s5.counters["outdoor.antennas"] > 0);
}

#[test]
fn same_seed_runs_produce_identical_counters() {
    let _guard = LOCK.lock().unwrap();
    let a = metered_run(42);
    let b = metered_run(42);
    assert_eq!(a.counters, b.counters, "counters must be deterministic");
    // Span call-counts (not walls) must match too.
    let calls = |r: &BenchReport| -> Vec<(String, u64)> {
        r.spans.iter().map(|(p, &(c, _))| (p.clone(), c)).collect()
    };
    assert_eq!(calls(&a), calls(&b));
}

#[test]
fn k_sweep_computes_the_condensed_matrix_once() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset();
    let config = StudyConfig {
        run_k_sweep: true,
        ..StudyConfig::fast()
    };
    let st = IcnStudy::run(&ds, config);
    let snap = obs.snapshot();
    obs.disable();
    obs.reset();
    assert!(!st.k_sweep.is_empty(), "sweep must actually run");
    // The Figure 2 sweep needs Euclidean distances while Ward works in
    // squared ones; deriving the former by entry-wise sqrt means the
    // O(N²·M) pairwise pass runs exactly once per study. This pins the
    // fix for the double computation (the span used to report 2 calls).
    let (calls, _) = snap.spans["stage2_cluster/condensed"];
    assert_eq!(calls, 1, "pairwise distances computed more than once");
    // Regression guard for the sweep-point counter: when the sweep runs,
    // `cluster.k_sweep_points` must be recorded inside the live stage-2
    // span and land on that stage in the built report, with one point per
    // swept k. (A report recorded *without* `--sweep` legitimately shows
    // 0 — the counter reflects configuration, not a bug — so this is the
    // configured-on case that bench recordings must use.)
    let report = BenchReport::build(&snap, "k-sweep-test", ds.config.scale);
    let s2 = report.stage("stage2_cluster").expect("stage2 present");
    assert_eq!(
        s2.counters.get("cluster.k_sweep_points").copied(),
        Some(st.k_sweep.len() as u64),
        "k_sweep_points must attribute to stage2 and count the swept ks"
    );
    assert!(s2.counters["cluster.k_sweep_points"] > 0);
}

#[test]
fn ingest_counters_flow_into_reports() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_at(0.2);
    let window = common::probe_window(2);
    let mut stream = record_stream(&ds, &window);
    let mut pipe = IngestPipeline::new(stream.schema(), IngestConfig::default());
    pipe.run(&mut stream).expect("clean stream");
    let ok = pipe.stats().ok;
    let report = BenchReport::build(&obs.snapshot(), "ingest-test", 0.2);
    obs.disable();
    obs.reset();
    let stage = report.stage("ingest").expect("ingest stage present");
    assert!(stage.wall_ms > 0.0);
    assert_eq!(stage.counters["ingest.records_ok"], ok);
    assert_eq!(stage.counters["ingest.records_quarantined"], 0);
    assert!(stage.counters["ingest.chunks"] > 0);
    assert!(report.gauges.contains_key("ingest.records_per_sec"));
}

#[test]
fn every_span_roots_to_a_stage_at_any_thread_count() {
    let _guard = LOCK.lock().unwrap();
    let mut allowed: BTreeSet<&str> = PIPELINE_STAGES.iter().copied().collect();
    allowed.insert("generate");
    for threads in ["1", "4"] {
        let snap = metered_snapshot(7, Some(threads));
        assert!(!snap.span_tree.is_empty(), "no spans recorded");
        for span in &snap.span_tree {
            let root = snap
                .root_of(span)
                .unwrap_or_else(|| panic!("broken parent link under {}", span.path));
            assert!(
                allowed.contains(root.name.as_str()),
                "ICN_THREADS={threads}: span {} roots to {} (not a stage)",
                span.path,
                root.name
            );
            // Cross-thread workers must be adopted, never orphaned roots.
            if span.name == "fit_tree" || span.name == "shap_chunk" {
                let parent = span.parent.expect("worker span must have a parent");
                let p = snap.span_by_id(parent).expect("parent present in tree");
                assert!(
                    p.name == "forest_fit" || p.name == "shap_batch",
                    "worker span {} parented to {} instead of its stage",
                    span.path,
                    p.path
                );
            }
        }
    }
}

#[test]
fn span_paths_are_thread_count_invariant() {
    let _guard = LOCK.lock().unwrap();
    // Span *paths* (not counts: chunk sizes legitimately depend on the
    // worker count) must be identical however many threads run the
    // pipeline — worker spans always attach under the dispatching stage.
    let paths = |snap: &Snapshot| -> BTreeSet<String> {
        snap.span_tree.iter().map(|s| s.path.clone()).collect()
    };
    let seq = metered_snapshot(7, Some("1"));
    let par = metered_snapshot(7, Some("4"));
    assert_eq!(
        paths(&seq),
        paths(&par),
        "span path set changed between ICN_THREADS=1 and 4"
    );
    // The parallel run must actually have used several threads for the
    // worker spans, or this test is vacuous.
    let worker_threads: BTreeSet<u64> = par
        .span_tree
        .iter()
        .filter(|s| s.name == "fit_tree")
        .map(|s| s.thread)
        .collect();
    assert!(
        worker_threads.len() > 1,
        "expected fit_tree spans on multiple threads, got {worker_threads:?}"
    );
}

#[test]
fn chrome_trace_round_trips_and_covers_the_pipeline() {
    let _guard = LOCK.lock().unwrap();
    let snap = metered_snapshot(7, Some("2"));
    let json = icn_obs::chrome_trace(&snap);
    let text = json.to_compact();
    let back = Json::parse(&text).expect("exported trace must be valid JSON");

    let events = back
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut ids = BTreeSet::new();
    let mut names = BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        match ph {
            "X" => {
                // Complete events carry the span identity and timing.
                assert!(ev.get("ts").and_then(Json::as_f64).is_some());
                assert!(ev.get("dur").and_then(Json::as_f64).is_some());
                assert!(ev.get("tid").and_then(Json::as_f64).is_some());
                let args = ev.get("args").expect("args");
                let id = args.get("id").and_then(Json::as_f64).expect("args.id");
                ids.insert(id as u64);
                names.insert(ev.get("name").and_then(Json::as_str).unwrap().to_string());
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for stage in PIPELINE_STAGES {
        assert!(names.contains(stage), "trace missing stage {stage}");
    }
    for worker in ["fit_tree", "shap_chunk"] {
        assert!(names.contains(worker), "trace missing worker span {worker}");
    }
    // Every parent reference must resolve within the same trace.
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("X") {
            if let Some(parent) = ev.get("args").and_then(|a| a.get("parent")) {
                let p = parent.as_f64().expect("parent is numeric") as u64;
                assert!(ids.contains(&p), "dangling parent id {p}");
            }
        }
    }
}

#[test]
fn v2_reports_carry_histograms_and_env() {
    let _guard = LOCK.lock().unwrap();
    let report = metered_run(7);
    for h in ["shap.chunk_ns", "forest.tree_fit_ns", "cluster.merge_ns"] {
        let hist = report
            .histograms
            .get(h)
            .unwrap_or_else(|| panic!("missing histogram {h}"));
        assert!(hist.count() > 0, "{h} recorded no samples");
        assert!(hist.quantile(0.99) >= hist.quantile(0.5), "{h} p99 < p50");
    }
    assert!(report.env.scale > 0.0, "env.scale not stamped");
    // Round-trip: histograms must come back bit-identical.
    let text = report.to_json().to_pretty();
    let back = BenchReport::parse(&text).expect("v2 round trip");
    for (name, h) in &report.histograms {
        let b = &back.histograms[name];
        assert_eq!(b.count(), h.count(), "{name} count");
        assert_eq!(
            b.nonzero_buckets().collect::<Vec<_>>(),
            h.nonzero_buckets().collect::<Vec<_>>(),
            "{name} buckets"
        );
    }
}

#[test]
fn probe_campaign_counters_flow_into_reports() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let ds = common::dataset_at(0.01);
    let window = common::probe_window(2);
    let result = run_campaign(&ds, &window, &CampaignConfig::default());
    let report = BenchReport::build(&obs.snapshot(), "probe-test", 0.01);
    obs.disable();
    obs.reset();
    let probe = report.stage("probe_campaign").expect("probe stage present");
    assert!(probe.wall_ms > 0.0);
    assert_eq!(probe.counters["probe.sessions"], result.sessions as u64);
    assert_eq!(probe.counters["probe.antennas"], ds.num_antennas() as u64);
}
