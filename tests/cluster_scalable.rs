//! The scalable stage-2 path, end to end: sampled-Ward agreement with
//! exact Ward at paper sub-scales (the ARI gate from the scaling study),
//! the memory-budget regression guaranteeing the sampled path never
//! materializes the full condensed matrix, and the `cluster_path = sampled`
//! configuration flowing through the whole pipeline.

use icn_repro::icn_cluster::agglomerate_condensed;
use icn_repro::icn_obs;
use icn_repro::prelude::*;

mod common;

/// RSCA features of the paper-configured synthetic campaign at `scale`.
fn rsca_at(scale: f64) -> Matrix {
    let ds = Dataset::generate(SynthConfig::paper().with_scale(scale));
    let (t_live, _) = filter_dead_rows(&ds.indoor_totals);
    rsca(&t_live)
}

/// The agreement gate: a 60% seeded sample with one refinement pass must
/// reproduce exact Ward's partition at ARI ≥ 0.9 on the paper geometry.
/// These are the same scales and hyper-parameters the `bench_cluster`
/// sweep records into `BENCH_pr6.json`, pinned here so a regression in
/// either the sampler or the refiner fails tests rather than just
/// drifting a benchmark artefact.
#[test]
fn sampled_ward_agrees_with_exact_at_paper_subscales() {
    let config = StudyConfig::paper();
    for scale in [0.05, 0.2] {
        let rsca_m = rsca_at(scale);
        let n = rsca_m.rows();
        let exact = agglomerate_condensed(
            &Condensed::from_rows(&rsca_m, Linkage::Ward.base_metric()),
            Linkage::Ward,
        )
        .cut(config.k);
        let sw = sampled_ward(
            &rsca_m,
            config.k,
            &SampledWardConfig {
                sample: n * 3 / 5,
                seed: SynthConfig::default().seed,
                refine_iters: 2,
            },
        );
        let ari = adjusted_rand_index(&exact, &sw.labels);
        assert!(
            ari >= 0.9,
            "scale {scale}: sampled vs exact Ward ARI = {ari:.4} < 0.9 (n = {n})"
        );
    }
}

/// A blobby large-N fixture that would need far more than the test budget
/// if clustered exactly.
fn large_fixture(n: usize, dims: usize, k: usize) -> Matrix {
    let mut rng = Rng::seed_from(0xB16_F1C);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dims).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centers[i % k];
            c.iter().map(|&v| rng.normal(v, 0.05)).collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// Satellite regression: the sampled path must stay inside its memory
/// budget — the `cluster.condensed_bytes` gauge (set by every condensed
/// build) proves the only pairwise matrix ever materialized was the
/// sample's, never the full population's. Owns the process-global
/// registry for its whole body, per the suite's env-test discipline.
#[test]
fn sampled_path_never_materializes_full_condensed() {
    let n = 6000;
    let budget_bytes: usize = 4 * 1024 * 1024; // 4 MB — exact needs ~412 MB
    assert!(exact_memory_bytes(n) > budget_bytes);
    assert_eq!(
        ClusterPath::Auto.resolve(n, budget_bytes),
        ClusterPath::Sampled
    );

    let fixture = large_fixture(n, 24, 6);
    let sample = max_sample_for_budget(budget_bytes).min(n);
    assert!(sample < n, "budget must force a strict sample");

    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let sw = sampled_ward(
        &fixture,
        6,
        &SampledWardConfig {
            sample,
            seed: 42,
            refine_iters: 1,
        },
    );
    let snap = obs.snapshot();
    obs.disable();
    obs.reset();

    let full_bytes = n * (n - 1) / 2 * std::mem::size_of::<f64>();
    let gauge = snap.gauges["cluster.condensed_bytes"] as usize;
    assert_eq!(gauge, sw.condensed_bytes, "gauge disagrees with result");
    assert!(
        gauge <= budget_bytes,
        "condensed allocation {gauge} B exceeds the {budget_bytes} B budget"
    );
    assert!(
        gauge < full_bytes / 50,
        "condensed allocation {gauge} B is suspiciously close to the full \
         matrix's {full_bytes} B — did the sampled path degrade to exact?"
    );
    // The assignment stage must have metered the non-sample rows.
    assert!(snap.histograms.contains_key("cluster.assign_ns"));
    assert_eq!(sw.labels.len(), n);
    assert!(sw.labels.iter().all(|&l| l < 6));
}

/// `cluster_path = sampled` must flow through the full study: every stage
/// downstream of clustering (profiles, surrogate, SHAP, crosstabs) runs
/// off the extended labels without knowing a sample was involved.
#[test]
fn pipeline_runs_end_to_end_on_sampled_path() {
    let ds = common::dataset();
    let config = StudyConfig {
        cluster_path: ClusterPath::Sampled,
        cluster_budget_mb: 1,
        ..StudyConfig::fast()
    };
    let st = IcnStudy::run(&ds, config);
    let n = st.rsca.rows();
    assert_eq!(st.labels.len(), n);
    assert_eq!(st.labels_coarse.len(), n);
    assert!(st.labels.iter().all(|&l| l < st.config.k));
    assert!(st.labels_coarse.iter().all(|&l| l < st.config.k_coarse));
    // Coarse labels are exactly the fine labels pushed through the
    // consolidation map, sample or no sample.
    for (f, c) in st.labels.iter().zip(&st.labels_coarse) {
        assert_eq!(st.consolidation[*f], *c);
    }
    // The sample hierarchy is smaller than the population (strict sample).
    assert!(
        st.history.n < n,
        "budget of 1 MB must force a strict sample"
    );
    assert_eq!(st.profiles.len(), st.config.k);
    assert!(st.surrogate_accuracy > 0.5);
}

/// Auto path selection is a pure function of N and the budget: paper-scale
/// populations stay exact (goldens untouched), hyper-scale populations go
/// sampled.
#[test]
fn auto_path_selection_respects_budget() {
    let mb = 1024 * 1024;
    let default_budget = StudyConfig::default().cluster_budget_mb * mb;
    // The paper's full population (~4.7k antennas) fits the default budget.
    assert_eq!(
        ClusterPath::Auto.resolve(4762, default_budget),
        ClusterPath::Exact
    );
    // 50k antennas would need ~30 GB: sampled.
    assert_eq!(
        ClusterPath::Auto.resolve(50_000, default_budget),
        ClusterPath::Sampled
    );
    // Explicit paths are never overridden.
    assert_eq!(
        ClusterPath::Exact.resolve(50_000, default_budget),
        ClusterPath::Exact
    );
    assert_eq!(
        ClusterPath::Sampled.resolve(10, default_budget),
        ClusterPath::Sampled
    );
    // Budget math round-trips: the largest sample the budget admits would
    // itself fit the budget, and one antenna more would not.
    let s = max_sample_for_budget(default_budget);
    assert!(exact_memory_bytes(s) <= default_budget);
    assert!(exact_memory_bytes(s + 1) > default_budget);
}
