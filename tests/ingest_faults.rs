//! Fault-matrix suite for the ingest subsystem: every fault kind at every
//! rate must leave the pipeline running, the quarantine ledger reconciled
//! against the injector's own counts **exactly**, and the clean part of
//! `T` untouched bit for bit.
//!
//! The injector is deterministic per `(seed, record index)`, so injected
//! counts are exact expectations, not statistical ones. Failures of the
//! randomized property feed the `icn_stats::check` replay corpus under
//! `tests/corpus/ingest/` so a failing seed reruns first forever after.

use icn_repro::icn_stats::check;
use icn_repro::icn_testkit::assert_bits_eq;
use icn_repro::prelude::*;

mod common;

/// Fault kinds of the matrix, as `FaultConfig` field selectors.
#[derive(Clone, Copy, Debug)]
enum Kind {
    Drop,
    Duplicate,
    Reorder,
    Corrupt,
}

impl Kind {
    fn config(self, rate: f64, seed: u64) -> FaultConfig {
        let mut f = FaultConfig {
            seed,
            ..FaultConfig::default()
        };
        match self {
            Kind::Drop => f.drop = rate,
            Kind::Duplicate => f.duplicate = rate,
            Kind::Reorder => f.reorder = rate,
            Kind::Corrupt => f.corrupt = rate,
        }
        f
    }
}

/// The five structural quarantine reasons a corrupted record can map to
/// (one each, by construction of the injector's defect classes).
const STRUCTURAL: [QuarantineReason; 5] = [
    QuarantineReason::NonFiniteVolume,
    QuarantineReason::NegativeVolume,
    QuarantineReason::UnknownAntenna,
    QuarantineReason::UnknownService,
    QuarantineReason::OutOfWindowHour,
];

struct FaultRun {
    result: IngestResult,
    dropped: u64,
    duplicated: u64,
    corrupted: u64,
    affected: Vec<(u32, u32)>,
}

fn run_faulty(ds: &Dataset, window: &StudyCalendar, faults: FaultConfig) -> FaultRun {
    let mut src = record_stream(ds, window).with_faults(faults);
    let mut pipe = IngestPipeline::new(src.inner().schema(), IngestConfig::default());
    pipe.run(&mut src).expect("fault stream completes");
    let report = src.report();
    FaultRun {
        dropped: report.dropped,
        duplicated: report.duplicated,
        corrupted: report.corrupted,
        affected: report.affected_cells.iter().copied().collect(),
        result: pipe.finish(),
    }
}

#[test]
fn fault_matrix_reconciles_exactly() {
    let ds = common::dataset_at(0.3);
    let window = common::probe_window(1);
    let batch = &ds.indoor_totals;
    let clean_total = record_stream(&ds, &window).total_records();

    for kind in [Kind::Drop, Kind::Duplicate, Kind::Reorder, Kind::Corrupt] {
        for rate in [0.0, 0.01, 0.2] {
            let run = run_faulty(&ds, &window, kind.config(rate, 0x000F_A017_5EED));
            let what = format!("{kind:?} at rate {rate}");
            let stats = &run.result.stats;

            // The ledger balances: everything pulled is either in T or in
            // quarantine, and the injector's own counts predict both sides.
            assert_eq!(
                run.result.records_consumed,
                clean_total - run.dropped + run.duplicated,
                "{what}: consumed vs injected"
            );
            assert_eq!(
                stats.ok + stats.quarantined_total(),
                run.result.records_consumed,
                "{what}: ok + quarantined vs consumed"
            );
            // Exact per-reason attribution.
            assert_eq!(
                stats.quarantined_for(QuarantineReason::DuplicateKey),
                run.duplicated,
                "{what}: duplicates"
            );
            let structural: u64 = STRUCTURAL.iter().map(|&r| stats.quarantined_for(r)).sum();
            assert_eq!(structural, run.corrupted, "{what}: corruptions");
            assert_eq!(
                stats.quarantined_for(QuarantineReason::LateArrival),
                0,
                "{what}: block reordering stays inside the lateness window"
            );

            match kind {
                // Duplicates and reordering leave every accepted value in
                // place: T must be the batch matrix, bit for bit.
                Kind::Duplicate | Kind::Reorder => {
                    assert_bits_eq(run.result.totals.as_slice(), batch.as_slice(), &what);
                }
                // Drops and corruptions lose volume, but only in the cells
                // the injector says it touched.
                Kind::Drop | Kind::Corrupt => {
                    if rate == 0.0 {
                        assert_bits_eq(run.result.totals.as_slice(), batch.as_slice(), &what);
                    }
                    for i in 0..batch.rows() {
                        for j in 0..batch.cols() {
                            if !run.affected.contains(&(i as u32, j as u32)) {
                                assert_eq!(
                                    run.result.totals.get(i, j).to_bits(),
                                    batch.get(i, j).to_bits(),
                                    "{what}: untouched cell ({i},{j}) drifted"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn transient_errors_retry_and_reconcile() {
    let ds = common::dataset_at(0.2);
    let window = common::probe_window(1);
    let faults = FaultConfig {
        transient: 0.2,
        ..FaultConfig::default()
    };
    let mut src = record_stream(&ds, &window).with_faults(faults);
    let mut pipe = IngestPipeline::new(
        src.inner().schema(),
        IngestConfig {
            // 0.2^k dies fast, but the budget must dominate any plausible
            // unlucky streak for the run to be deterministic-by-seed.
            max_retries: 64,
            ..IngestConfig::default()
        },
    );
    pipe.run(&mut src).expect("retries absorb the transients");
    assert_eq!(
        pipe.stats().retried,
        src.report().transient_errors,
        "every injected transient error must be retried exactly once"
    );
    assert!(src.report().transient_errors > 0, "rate 0.2 must fire");
    let result = pipe.finish();
    assert_eq!(result.stats.quarantined_total(), 0);
    assert_bits_eq(
        result.totals.as_slice(),
        ds.indoor_totals.as_slice(),
        "transient errors lose no records",
    );
}

#[test]
fn combined_fault_soup_still_reconciles() {
    let ds = common::dataset_at(0.2);
    let window = common::probe_window(1);
    let faults =
        FaultConfig::parse_spec("drop=0.02,dup=0.05,reorder=0.1,corrupt=0.03").expect("valid spec");
    let run = run_faulty(&ds, &window, faults);
    let stats = &run.result.stats;
    assert_eq!(
        stats.quarantined_for(QuarantineReason::DuplicateKey),
        run.duplicated
    );
    let structural: u64 = STRUCTURAL.iter().map(|&r| stats.quarantined_for(r)).sum();
    assert_eq!(structural, run.corrupted);
    assert_eq!(
        stats.ok + stats.quarantined_total(),
        run.result.records_consumed
    );
}

/// Randomized fault-matrix property, with counterexample seeds persisted
/// to the in-repo corpus so regressions replay before fresh cases.
#[test]
fn random_fault_configs_always_reconcile() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("ingest");
    std::env::set_var("ICN_TESTKIT_REGRESSIONS", &corpus);
    let ds = common::dataset_at(0.15);
    let window = common::probe_window(1);
    check::cases_persisted(
        "ingest_fault_reconciliation",
        12,
        |rng| {
            vec![
                (rng.next_u64() & 0xFFFF_FFFF) as f64, // injector seed
                rng.uniform(0.0, 0.25),                // drop rate
                rng.uniform(0.0, 0.25),                // duplicate rate
                rng.uniform(0.0, 0.25),                // corrupt rate
            ]
        },
        |v: &Vec<f64>| {
            let seed = v.first().copied().unwrap_or(1.0).abs() as u64 | 1;
            let rate = |i: usize| v.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            let faults = FaultConfig {
                seed,
                drop: rate(1),
                duplicate: rate(2),
                corrupt: rate(3),
                ..FaultConfig::default()
            };
            let run = run_faulty(&ds, &window, faults);
            let stats = &run.result.stats;
            let structural: u64 = STRUCTURAL.iter().map(|&r| stats.quarantined_for(r)).sum();
            stats.quarantined_for(QuarantineReason::DuplicateKey) == run.duplicated
                && structural == run.corrupted
                && stats.ok + stats.quarantined_total() == run.result.records_consumed
        },
    );
    std::env::remove_var("ICN_TESTKIT_REGRESSIONS");
}
