//! Integration ablation B1: the paper's core preprocessing claim.
//!
//! Section 4.1 argues that clustering raw (or max-normalised) traffic
//! "essentially group[s] antennas according to their popularity", while
//! RSCA exposes utilisation profiles. On the synthetic campaign this is
//! testable: RSCA clustering must recover the planted archetypes far
//! better than volume-based clustering.

use icn_repro::prelude::*;

mod common;
use icn_stats::normalize;

fn ari_of(matrix: &Matrix, planted: &[usize]) -> f64 {
    let history = agglomerate(matrix, Linkage::Ward);
    let labels = history.cut(9);
    adjusted_rand_index(&labels, planted)
}

#[test]
fn rsca_beats_raw_and_normalised_clustering() {
    let dataset = common::dataset();
    let (t_live, live_rows) = filter_dead_rows(&dataset.indoor_totals);
    let planted: Vec<usize> = live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();

    let ari_rsca = ari_of(&rsca(&t_live), &planted);
    let ari_raw = ari_of(&t_live, &planted);
    let ari_norm = ari_of(&normalize::by_global_max(&t_live), &planted);
    let ari_rca = ari_of(&rca(&t_live), &planted);

    assert!(ari_rsca > 0.8, "RSCA ARI {ari_rsca}");
    assert!(
        ari_rsca > ari_raw + 0.3,
        "RSCA {ari_rsca} vs raw {ari_raw}: raw should be far worse"
    );
    // Global max normalisation is a no-op for cluster geometry (uniform
    // scaling) — same failure as raw.
    assert!(
        (ari_raw - ari_norm).abs() < 1e-9,
        "normalised {ari_norm} vs raw {ari_raw}"
    );
    // RCA already helps, but its unbounded tail hurts vs RSCA (the
    // Laursen-symmetrisation argument).
    assert!(
        ari_rsca >= ari_rca - 1e-9,
        "RSCA {ari_rsca} should not lose to RCA {ari_rca}"
    );
}

#[test]
fn raw_clustering_groups_by_volume() {
    // Confirm the failure mode: clusters on raw traffic correlate with
    // total volume, not with archetype.
    let dataset = common::dataset();
    let (t_live, _) = filter_dead_rows(&dataset.indoor_totals);
    let history = agglomerate(&t_live, Linkage::Ward);
    let labels = history.cut(9);
    let volumes = t_live.row_sums();

    // Compute within-cluster volume dispersion vs global: popularity
    // grouping means volumes within a raw cluster are far less dispersed.
    let global_sd = icn_stats::summary::std_dev(&volumes);
    let mut within: Vec<f64> = Vec::new();
    for c in 0..9 {
        let vs: Vec<f64> = volumes
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == c)
            .map(|(&v, _)| v)
            .collect();
        if vs.len() > 1 {
            within.push(icn_stats::summary::std_dev(&vs));
        }
    }
    let mean_within = icn_stats::summary::mean(&within);
    assert!(
        mean_within < 0.8 * global_sd,
        "raw clusters should compress volume: within {mean_within} vs global {global_sd}"
    );
}

#[test]
fn kmeans_baseline_recovers_with_rsca_features() {
    // B3: the k-means baseline also works on RSCA (the structure is real,
    // not an artefact of the agglomerative algorithm), though the paper
    // prefers hierarchy for interpretability.
    let dataset = common::dataset();
    let (t_live, live_rows) = filter_dead_rows(&dataset.indoor_totals);
    let planted: Vec<usize> = live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    let features = rsca(&t_live);
    let mut rng = Rng::seed_from(7);
    let km = kmeans_best_of(&features, 9, 200, 8, &mut rng);
    let ari = adjusted_rand_index(&km.labels, &planted);
    assert!(ari > 0.6, "k-means ARI {ari}");
}

#[test]
fn linkage_ablation_ward_is_competitive() {
    // B2: Ward should dominate single linkage (which chains) and be at
    // least competitive with complete/average on archetype recovery.
    let dataset = common::dataset();
    let (t_live, live_rows) = filter_dead_rows(&dataset.indoor_totals);
    let planted: Vec<usize> = live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    let features = rsca(&t_live);
    let ari_for = |linkage: Linkage| {
        let h = agglomerate(&features, linkage);
        adjusted_rand_index(&h.cut(9), &planted)
    };
    let ward = ari_for(Linkage::Ward);
    let single = ari_for(Linkage::Single);
    assert!(ward > 0.8, "ward {ward}");
    assert!(
        ward > single + 0.2,
        "ward {ward} should beat single-linkage chaining {single}"
    );
}
