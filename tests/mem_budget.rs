//! Allocator-level memory regressions for the scalable paths, and the
//! `--mem-budget-mb` enforcement gate end to end.
//!
//! This binary installs the counting allocator (each integration test
//! file is its own binary, so the `#[global_allocator]` slot is free),
//! which makes the assertions here stronger than the gauge-based ones in
//! `cluster_scalable.rs`: the gauges say what the code *claims* to have
//! allocated, the allocator window says what it *actually* allocated.
//! Counting only runs while the global registry is enabled, so the other
//! tests in this binary (and the harness itself) see the inert
//! single-branch disabled path.

use icn_repro::icn_obs::{self, mem};
use icn_repro::prelude::*;
use std::process::Command;
use std::sync::Mutex;

mod common;

#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

/// Serializes every test that owns the process-global allocator window
/// (same discipline as the registry tests in `overhead_guard.rs`).
static LOCK: Mutex<()> = Mutex::new(());

/// A blobby large-N fixture (same construction as `cluster_scalable.rs`).
fn large_fixture(n: usize, dims: usize, k: usize) -> Matrix {
    let mut rng = Rng::seed_from(0xB16_F1C);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dims).map(|_| rng.uniform(0.0, 1.0)).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = &centers[i % k];
            c.iter().map(|&v| rng.normal(v, 0.05)).collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// Opens a counting window around `f` and returns the allocator stats of
/// exactly that window.
fn windowed<T>(f: impl FnOnce() -> T) -> (T, mem::MemStats) {
    let obs = icn_obs::global();
    obs.reset();
    obs.enable();
    let out = f();
    let stats = mem::stats();
    obs.disable();
    obs.reset();
    (out, stats)
}

/// The sampled-Ward path must stay near its *condensed* budget in real
/// allocator bytes, not just in the gauge it publishes: at n = 6000 the
/// exact path would materialize a ~144 MB condensed matrix (and ~432 MB
/// of working set), while the sampled path under a 4 MB budget must peak
/// within a small multiple of that budget.
#[test]
fn sampled_ward_allocator_peak_respects_the_budget() {
    let _guard = LOCK.lock().unwrap();
    let n = 6000;
    let budget_bytes: usize = 4 * 1024 * 1024;
    let fixture = large_fixture(n, 24, 6);
    let sample = max_sample_for_budget(budget_bytes).min(n);
    assert!(sample < n, "budget must force a strict sample");

    let (sw, stats) = windowed(|| {
        sampled_ward(
            &fixture,
            6,
            &SampledWardConfig {
                sample,
                seed: 42,
                refine_iters: 1,
            },
        )
    });
    let full_condensed = n * (n - 1) / 2 * std::mem::size_of::<f64>();
    let peak = stats.peak_bytes as usize;
    println!(
        "sampled-ward window: peak {peak} B, condensed gauge {} B",
        sw.condensed_bytes
    );
    assert!(stats.allocs > 0, "counting window saw no allocations");
    // 4x the condensed budget covers the sample matrix, the dendrogram
    // and the refinement scratch; the exact path cannot fit this.
    assert!(
        peak <= budget_bytes * 4,
        "sampled-ward peak {peak} B blew past 4x the {budget_bytes} B budget"
    );
    assert!(
        peak < full_condensed / 8,
        "peak {peak} B is within 8x of the full condensed matrix's \
         {full_condensed} B — did the sampled path degrade to exact?"
    );
    assert_eq!(sw.labels.len(), n);
}

/// Satellite consistency pin: the hand-maintained `cluster.condensed_bytes`
/// gauge (now routed through `icn_obs::gauge_bytes`) must never exceed the
/// allocator's stage-2 window peak — the gauge describes one allocation
/// that demonstrably happened inside the window.
#[test]
fn condensed_gauge_is_bounded_by_the_allocator_peak() {
    let _guard = LOCK.lock().unwrap();
    let fixture = large_fixture(600, 24, 6);
    let (cond, stats) = windowed(|| Condensed::from_rows(&fixture, Linkage::Ward.base_metric()));
    let snap_gauge = {
        let obs = icn_obs::global();
        obs.reset();
        obs.enable();
        let _c = Condensed::from_rows(&fixture, Linkage::Ward.base_metric());
        let g = obs.snapshot().gauges["cluster.condensed_bytes"];
        obs.disable();
        obs.reset();
        g as usize
    };
    let want = 600 * 599 / 2 * std::mem::size_of::<f64>();
    assert_eq!(snap_gauge, want, "gauge disagrees with the triangle size");
    assert_eq!(cond.len(), 600);
    let peak = stats.peak_bytes as usize;
    assert!(
        want <= peak,
        "condensed gauge {want} B exceeds the allocator window peak {peak} B \
         — the gauge claims an allocation the allocator never saw"
    );
}

/// Streamed ingest must not buffer the feed: running the production
/// pipeline straight off the synthetic record stream (no materialized
/// feed anywhere), its allocator peak is a small multiple of the totals
/// matrix it builds — never the O(records) footprint of the feed itself.
#[test]
fn streamed_ingest_peak_is_a_matrix_not_the_feed() {
    let _guard = LOCK.lock().unwrap();
    let ds = Dataset::generate(SynthConfig::paper().with_scale(0.05));
    let window = common::probe_window(3);
    let mut stream = record_stream(&ds, &window);
    let schema = stream.schema();
    let feed_bytes = schema.total_records() as usize * std::mem::size_of::<HourlyRecord>();

    let (got, stats) = windowed(|| {
        let mut pipe = IngestPipeline::new(schema, IngestConfig::default());
        pipe.run(&mut stream).expect("clean stream");
        pipe.finish()
    });
    assert_eq!(got.stats.quarantined_total(), 0);
    assert_eq!(got.stats.ok, schema.total_records());
    let matrix_bytes = std::mem::size_of_val(got.totals.as_slice());
    let peak = stats.peak_bytes as usize;
    println!("ingest window: peak {peak} B, matrix {matrix_bytes} B, feed {feed_bytes} B");
    assert!(stats.allocs > 0, "counting window saw no allocations");
    // Measured ~3.3 MB on the reference box (totals matrix + chunk
    // buffers + generator scratch); 16 MB is ~5x headroom yet still 2.5x
    // under the feed, so buffering the stream trips the gate.
    assert!(
        peak < feed_bytes / 4,
        "ingest peak {peak} B is O(feed = {feed_bytes} B): the pipeline \
         buffered the stream instead of folding it"
    );
    assert!(
        peak <= 16 << 20,
        "ingest peak {peak} B blew the 16 MiB ceiling for a \
         {matrix_bytes} B totals matrix"
    );
}

fn icn(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icn"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn icn")
}

/// `--mem-budget-mb` end to end: a generous budget passes (exit 0,
/// verdict "ok" stamped into the v3 report), a 1 MiB budget breaches
/// (exit 3 — but only after the report is written, verdict "breached"),
/// and `icn obs mem` renders the byte treetable from the written report.
#[test]
fn cli_mem_budget_gate_and_obs_mem_render() {
    let dir = std::env::temp_dir().join("icn_mem_budget_cli");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ok_path = dir.join("ok.json");
    let bad_path = dir.join("bad.json");

    let ok = icn(
        &[
            "run",
            "--scale",
            "0.02",
            "--mem-budget-mb",
            "4096",
            "--metrics-out",
            ok_path.to_str().unwrap(),
        ],
        &[("ICN_THREADS", "1")],
    );
    assert!(
        ok.status.success(),
        "budget-ok run exited nonzero:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let report = icn_obs::BenchReport::parse(&std::fs::read_to_string(&ok_path).unwrap())
        .expect("parse ok report");
    let mem_section = report.memory.as_ref().expect("v3 memory section");
    assert_eq!(mem_section.budget_mb, Some(4096));
    assert_eq!(mem_section.budget_verdict.as_deref(), Some("ok"));
    assert!(!mem_section.breached());
    assert!(mem_section.peak_bytes > 0);
    assert!(
        !mem_section.spans.is_empty(),
        "span attribution missing from the report"
    );

    let bad = icn(
        &[
            "run",
            "--scale",
            "0.02",
            "--mem-budget-mb",
            "1",
            "--metrics-out",
            bad_path.to_str().unwrap(),
        ],
        &[("ICN_THREADS", "1")],
    );
    assert_eq!(
        bad.status.code(),
        Some(3),
        "budget breach must exit 3:\n{}",
        String::from_utf8_lossy(&bad.stderr)
    );
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("memory budget BREACHED"),
        "breach diagnostic missing"
    );
    // The report was still written, with the verdict stamped — the gate
    // fails the process, not the artefact.
    let breached = icn_obs::BenchReport::parse(&std::fs::read_to_string(&bad_path).unwrap())
        .expect("parse breached report");
    let m = breached.memory.as_ref().expect("memory section");
    assert_eq!(m.budget_verdict.as_deref(), Some("breached"));
    assert!(m.breached());

    let render = icn(&["obs", "mem", ok_path.to_str().unwrap()], &[]);
    assert!(render.status.success());
    let text = String::from_utf8_lossy(&render.stdout);
    assert!(
        text.contains("allocator window"),
        "summary line missing:\n{text}"
    );
    assert!(
        text.contains("stage2_cluster"),
        "span treetable missing:\n{text}"
    );
    assert!(
        text.contains("budget: 4096 MiB -> ok"),
        "verdict line missing:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Attribution acceptance: at `ICN_THREADS=1` (the canonical attribution
/// configuration) the per-span self bytes must account for the window —
/// their sum lands in [0.5x, 1.05x] of the allocator's windowed
/// `total_alloc_bytes`. The lower bound catches attribution silently
/// dropping stages; the upper bound catches double counting.
#[test]
fn span_attribution_accounts_for_the_window_at_one_thread() {
    let dir = std::env::temp_dir().join("icn_mem_attrib_cli");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("attrib.json");
    let out = icn(
        &[
            "run",
            "--scale",
            "0.02",
            "--metrics-out",
            path.to_str().unwrap(),
        ],
        &[("ICN_THREADS", "1")],
    );
    assert!(out.status.success());
    let report = icn_obs::BenchReport::parse(&std::fs::read_to_string(&path).unwrap())
        .expect("parse report");
    let m = report.memory.as_ref().expect("memory section");
    let attributed: u64 = m.spans.values().map(|a| a.bytes).sum();
    let total = m.total_alloc_bytes;
    let ratio = attributed as f64 / total as f64;
    assert!(
        (0.5..=1.05).contains(&ratio),
        "span-attributed bytes {attributed} cover {ratio:.3} of the \
         window's {total} B (want 0.5..=1.05)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
