//! Differential and metamorphic tests for the icn-obs log-bucketed
//! histogram.
//!
//! The histogram backs the latency distributions in every `icn-obs/v2`
//! report and the `icn obs diff` perf gate, so its quantiles are part of
//! the CI contract: `quantile(q)` must agree *exactly* (not approximately)
//! with a sort-based oracle at bucket resolution, and merging per-thread
//! histograms must be order-independent so multi-threaded runs stay
//! deterministic.

use icn_repro::icn_obs::Histogram;
use icn_repro::icn_stats::Rng;
use icn_repro::icn_testkit::{hist_of, sort_quantile};

const QS: [f64; 5] = [0.5, 0.9, 0.99, 0.0, 1.0];

/// Draws a latency-shaped sample set (lognormal ns with occasional huge
/// outliers), the distribution the histogram actually sees in production.
fn latency_samples(rng: &mut Rng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let base = rng.lognormal(11.0, 2.0) as u64; // ~60µs median
            if rng.chance(0.01) {
                base.saturating_mul(1000) // tail outlier
            } else {
                base
            }
        })
        .collect()
}

#[test]
fn quantiles_match_sort_oracle_exactly() {
    let mut rng = Rng::seed_from(0x1157);
    for trial in 0..50 {
        let n = 1 + rng.index(2000);
        let samples = latency_samples(&mut rng, n);
        let h = hist_of(&samples);
        for q in QS {
            assert_eq!(
                h.quantile(q),
                sort_quantile(&samples, q),
                "trial {trial}: n={n} q={q} diverged from sort oracle"
            );
        }
    }
}

#[test]
fn quantiles_match_oracle_on_adversarial_shapes() {
    // Boundary-heavy inputs: all-equal, powers of two (bucket edges),
    // 0 and u64::MAX saturation, single sample.
    let shapes: Vec<Vec<u64>> = vec![
        vec![42; 100],
        (0..64).map(|i| 1u64 << i.min(63)).collect(),
        vec![0, 0, 0, u64::MAX, u64::MAX],
        vec![7],
        (0..100u64).collect(),
        vec![31, 32, 33, 63, 64, 65], // around the exact/bucketed border
    ];
    for (i, samples) in shapes.iter().enumerate() {
        let h = hist_of(samples);
        for q in QS {
            assert_eq!(
                h.quantile(q),
                sort_quantile(samples, q),
                "shape {i} q={q} diverged from sort oracle"
            );
        }
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = Rng::seed_from(0x4e6e);
    for trial in 0..30 {
        let n = 300 + rng.index(700);
        let samples = latency_samples(&mut rng, n);

        // Split into 2..6 random parts, as per-thread locals would.
        let parts = 2 + rng.index(5);
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); parts];
        for &v in &samples {
            shards[rng.index(parts)].push(v);
        }
        let mut hists: Vec<Histogram> = shards.iter().map(|s| hist_of(s)).collect();

        let reference = hist_of(&samples);

        // Merge in a random order (commutativity) and with a random
        // association (left-fold vs pairwise tree — associativity).
        rng.shuffle(&mut hists);
        let folded = hists.iter().fold(Histogram::new(), |mut acc, h| {
            acc.merge(h);
            acc
        });
        let mut tree: Vec<Histogram> = hists.clone();
        while tree.len() > 1 {
            let b = tree.pop().unwrap();
            let i = rng.index(tree.len());
            tree[i].merge(&b);
        }
        let paired = tree.pop().unwrap();

        for h in [&folded, &paired] {
            assert_eq!(h.count(), reference.count(), "trial {trial}: count");
            assert_eq!(h.sum(), reference.sum(), "trial {trial}: sum");
            assert_eq!(h.min(), reference.min(), "trial {trial}: min");
            assert_eq!(h.max(), reference.max(), "trial {trial}: max");
            let a: Vec<_> = h.nonzero_buckets().collect();
            let b: Vec<_> = reference.nonzero_buckets().collect();
            assert_eq!(a, b, "trial {trial}: bucket contents");
            for q in QS {
                assert_eq!(h.quantile(q), reference.quantile(q), "trial {trial}: q={q}");
            }
        }
    }
}

#[test]
fn merged_quantiles_still_match_the_oracle() {
    // End-to-end restatement of what multi-threaded stages do: each
    // worker tallies locally, the registry merges, the report quotes
    // quantiles of the merge. The oracle sees the concatenated samples.
    let mut rng = Rng::seed_from(0xcafe);
    let shards: Vec<Vec<u64>> = (0..4).map(|_| latency_samples(&mut rng, 500)).collect();
    let mut merged = Histogram::new();
    for s in &shards {
        let local = hist_of(s);
        merged.merge(&local);
    }
    let all: Vec<u64> = shards.concat();
    for q in QS {
        assert_eq!(merged.quantile(q), sort_quantile(&all, q), "q={q}");
    }
}

#[test]
fn sparse_round_trip_preserves_quantiles() {
    // The v2 report serializes histograms as sparse (index, count) pairs;
    // parsing back must preserve every quantile bit-for-bit.
    let mut rng = Rng::seed_from(7);
    let samples = latency_samples(&mut rng, 1500);
    let h = hist_of(&samples);
    let sparse: Vec<(usize, u64)> = h.nonzero_buckets().collect();
    let back = Histogram::from_sparse(&sparse, h.sum(), h.min(), h.max());
    for q in QS {
        assert_eq!(back.quantile(q), h.quantile(q), "q={q}");
    }
    assert_eq!(back.count(), h.count());
}
