//! Guards the zero-overhead-when-disabled contract of icn-obs: attaching
//! the registry must not perturb any numeric output (the pipeline stays
//! bit-for-bit identical), and the disabled instrumentation path must not
//! add measurable wall time.
//!
//! This binary also installs the counting allocator, so the bit-identity
//! checks below now hold *with allocation tracking live*: enabling the
//! registry turns counting on, and the metered run must still match the
//! unmetered run bit for bit — attribution observes the pipeline, it
//! never steers it.

use icn_repro::icn_obs::{self, mem};
use icn_repro::prelude::*;

mod common;
use std::sync::Mutex;
use std::time::Instant;

#[global_allocator]
static ALLOC: icn_obs::CountingAlloc = icn_obs::CountingAlloc::system();

static LOCK: Mutex<()> = Mutex::new(());

fn study(seed: u64) -> (Dataset, IcnStudy) {
    let ds = common::dataset_seeded(seed);
    let st = common::study_for(&ds);
    (ds, st)
}

/// Bit pattern of an `f64` slice, so `-0.0` vs `0.0` or differing NaN
/// payloads cannot masquerade as equality.
fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn metered_run_is_bit_identical_to_unmetered_run() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();

    obs.reset();
    obs.disable();
    let (ds_off, off) = study(2023);

    obs.reset();
    obs.enable();
    let (ds_on, on) = study(2023);
    obs.disable();
    obs.reset();

    assert_eq!(
        bits(ds_off.indoor_totals.as_slice()),
        bits(ds_on.indoor_totals.as_slice())
    );
    assert_eq!(off.live_rows, on.live_rows);
    assert_eq!(bits(off.rsca.as_slice()), bits(on.rsca.as_slice()));
    assert_eq!(off.labels, on.labels);
    assert_eq!(off.labels_coarse, on.labels_coarse);
    assert_eq!(off.consolidation, on.consolidation);
    for (a, b) in off.profiles.iter().zip(&on.profiles) {
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.size, b.size);
        assert_eq!(bits(&a.mean_rsca), bits(&b.mean_rsca));
    }
    assert_eq!(
        off.surrogate_accuracy.to_bits(),
        on.surrogate_accuracy.to_bits()
    );
    assert_eq!(off.outdoor.predicted, on.outdoor.predicted);
}

#[test]
fn disabled_registry_records_nothing() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.reset();
    obs.disable();
    let _ = study(5);
    let snap = obs.snapshot();
    assert!(
        snap.counters.is_empty(),
        "counters leaked: {:?}",
        snap.counters
    );
    assert!(
        snap.spans.is_empty(),
        "spans leaked: {:?}",
        snap.spans.keys()
    );
    assert!(
        snap.span_tree.is_empty(),
        "span tree leaked {} spans",
        snap.span_tree.len()
    );
    assert!(
        snap.histograms.is_empty(),
        "histograms leaked: {:?}",
        snap.histograms.keys()
    );
    assert!(snap.logs.is_empty(), "log records leaked: {:?}", snap.logs);
    assert_eq!(snap.logs_dropped, 0, "drop counter moved while disabled");
    // The span handoff must also be inert while disabled, or worker
    // threads would pay for clone+adopt on every parallel section.
    assert!(
        icn_obs::current_handoff().is_none(),
        "current_handoff must be None while disabled"
    );
}

/// The allocator side of the zero-overhead contract: while the registry
/// is disabled the counting window is frozen — the whole pipeline can
/// run without moving a single counter, because the disabled path is one
/// relaxed load on a static flag.
#[test]
fn allocator_window_is_frozen_while_disabled() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.disable();
    obs.reset();
    assert!(!mem::counting_enabled());

    let before = mem::stats();
    let (_ds, st) = study(7);
    std::hint::black_box(&st);
    let after = mem::stats();
    assert_eq!(before.allocs, 0, "window not clean after reset");
    assert_eq!(after.allocs, 0, "allocs counted while disabled");
    assert_eq!(after.total_alloc_bytes, 0, "bytes counted while disabled");
    assert_eq!(after.peak_bytes, 0, "peak moved while disabled");
    assert_eq!(after.live_bytes, 0, "live balance moved while disabled");

    // Enabling the registry opens the window: the same study now counts.
    obs.enable();
    let (_ds, st) = study(7);
    std::hint::black_box(&st);
    let counted = mem::stats();
    obs.disable();
    obs.reset();
    assert!(counted.allocs > 0, "enabled window saw no allocations");
    assert!(counted.peak_bytes > 0, "enabled window saw no peak");
}

/// Timing smoke check — inherently noisy, so not part of the default
/// suite. Run with `cargo test -- --ignored` on a quiet machine.
#[test]
#[ignore = "timing-sensitive; run explicitly on a quiet machine"]
fn disabled_path_adds_no_measurable_overhead() {
    let _guard = LOCK.lock().unwrap();
    let obs = icn_obs::global();
    obs.disable();

    let time = |reps: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(study(11));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let baseline = time(3);
    // The registry is already disabled — this measures the same code, so
    // any difference beyond 20% is noise or a real disabled-path cost.
    let again = time(3);
    let ratio = again / baseline;
    assert!(
        (0.8..1.25).contains(&ratio),
        "disabled-path runs diverged: {baseline:.3}s vs {again:.3}s"
    );
}
