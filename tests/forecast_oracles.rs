//! Differential oracles for the `icn-forecast` numerics.
//!
//! Each production path is pinned against a structurally *different*
//! reference implementation from `icn-testkit` over seeded random
//! inputs:
//!
//! * the seasonal-naive walk-back loop vs. closed-form modular indexing;
//! * the scalar-state + ring-buffer ETS vs. the hand-walked textbook
//!   recurrences with full per-`t` state vectors;
//! * the incremental sorted-buffer rolling median/MAD vs. re-sorting the
//!   trailing window from scratch at every position;
//! * the anomaly-score quantile helper vs. an explicit sort-and-
//!   interpolate oracle.
//!
//! Agreement is required to 1e-12 (naive and rolling stats to the bit).

use icn_repro::icn_forecast::{
    ets_forecast, score_quantile, seasonal_naive_forecast, smape, EtsParams, RollingRobust,
};
use icn_repro::icn_testkit::{brute_rolling_median_mad, oracle_ets, oracle_seasonal_naive};
use icn_repro::prelude::*;

/// Seeded noisy-seasonal series of length `n` (10% multiplicative noise
/// over a weekly shape plus a mild trend — the regime the models target).
fn noisy_series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|t| {
            let how = t % 168;
            let clean = 80.0 + (how as f64 * 0.23).sin() * 30.0 + 0.01 * t as f64;
            clean * (1.0 + 0.10 * rng.gaussian())
        })
        .collect()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "{what}[{i}]: {x} vs {y} (|Δ| = {:e})",
            (x - y).abs()
        );
    }
}

/// The production walk-back and the closed-form oracle agree bit-for-bit
/// for every (length, period, horizon) combination — including horizons
/// wrapping several periods.
#[test]
fn seasonal_naive_matches_closed_form_oracle() {
    for (seed, n) in [(1u64, 336usize), (2, 504), (3, 500), (4, 169)] {
        let h = noisy_series(n, seed);
        for period in [24usize, 168] {
            for horizon in [1usize, 24, 168, 400] {
                let prod = seasonal_naive_forecast(&h, period, horizon);
                let refr = oracle_seasonal_naive(&h, period, horizon);
                assert_eq!(prod, refr, "n={n} period={period} horizon={horizon}");
            }
        }
    }
}

/// The ring-buffer ETS and the hand-walked textbook recurrences agree to
/// 1e-12 across smoothing regimes and history lengths — trailing partial
/// periods included (the initialisation averages them in).
#[test]
fn ets_matches_hand_walked_oracle() {
    let params = [
        EtsParams::default(),
        EtsParams {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.1,
            ..EtsParams::default()
        },
        EtsParams {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0,
            ..EtsParams::default()
        },
    ];
    for (seed, n) in [(11u64, 336usize), (12, 504), (13, 450)] {
        let h = noisy_series(n, seed);
        for p in &params {
            let prod = ets_forecast(&h, p, 48);
            let refr = oracle_ets(&h, p, 48);
            assert_close(&prod, &refr, 1e-12, "ets");
        }
    }
}

/// The incremental rolling median/MAD equals brute-force re-sorting at
/// every position, through warm-up, steady state and eviction — on
/// continuous noise, on a discrete-valued series full of ties, and on a
/// series with planted collapse/burst outliers.
#[test]
fn rolling_robust_matches_brute_force() {
    let mut outliered = noisy_series(504, 21);
    for x in &mut outliered[240..264] {
        *x *= 0.05;
    }
    for x in &mut outliered[450..455] {
        *x *= 9.0;
    }
    let mut rng = Rng::seed_from(22);
    let discrete: Vec<f64> = (0..400).map(|_| rng.uniform(0.0, 8.0).floor()).collect();
    for (name, series) in [
        ("noisy", noisy_series(504, 20)),
        ("outliered", outliered),
        ("discrete-ties", discrete),
    ] {
        for window in [1usize, 2, 24, 168] {
            let (med_ref, mad_ref) = brute_rolling_median_mad(&series, window);
            let mut roll = RollingRobust::new(window);
            for (t, &x) in series.iter().enumerate() {
                roll.push(x);
                assert_eq!(
                    roll.median().to_bits(),
                    med_ref[t].to_bits(),
                    "{name} w={window} t={t}: median"
                );
                assert_eq!(
                    roll.mad().to_bits(),
                    mad_ref[t].to_bits(),
                    "{name} w={window} t={t}: MAD"
                );
            }
        }
    }
}

/// `score_quantile` equals an explicit sort + linear interpolation over
/// the |z| distribution at every probed quantile.
#[test]
fn score_quantiles_match_sort_oracle() {
    let v = noisy_series(504, 30);
    let det = detect(&v, &DetectorConfig::default());
    let mut sorted: Vec<f64> = det.scores.iter().map(|z| z.abs()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let idx = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (idx.floor() as usize, idx.ceil() as usize);
        let expect = sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - lo as f64);
        let got = score_quantile(&det.scores, q);
        assert!((got - expect).abs() <= 1e-12, "q={q}: {got} vs {expect}");
    }
}

/// Sanity pin tying the oracles to the acceptance gate: on the seeded
/// noisy-seasonal regime the backtested ETS beats the seasonal-naive
/// baseline, and sMAPE stays in its [0, 2] range.
#[test]
fn oracle_regime_prefers_smoothing_over_naive() {
    let h = noisy_series(504, 40);
    let naive = seasonal_naive_forecast(&h[..480], 168, 24);
    let ets = ets_forecast(&h[..480], &EtsParams::default(), 24);
    let actual = &h[480..504];
    let mae = |f: &[f64]| {
        f.iter()
            .zip(actual)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / f.len() as f64
    };
    assert!(
        mae(&ets) < mae(&naive),
        "ets {} naive {}",
        mae(&ets),
        mae(&naive)
    );
    let s = smape(&ets, actual);
    assert!(s > 0.0 && s < 2.0, "smape {s}");
}
