//! Indoor vs outdoor service-demand comparison (the Section 5.3 scenario).
//!
//! Shows that the environment-driven diversity found indoors is absent in
//! neighbouring outdoor macro cells: outdoor antennas, when classified by
//! the surrogate trained on indoor clusters, collapse into the general-use
//! cluster — even for outdoor cells standing next to stadiums or offices.
//!
//! ```sh
//! cargo run --release --example outdoor_comparison
//! ```

use icn_report::Table;
use icn_repro::prelude::*;

fn main() {
    let dataset = Dataset::generate(SynthConfig::small().with_scale(0.2));
    let study = IcnStudy::run(&dataset, StudyConfig::fast());

    // Indoor versus outdoor cluster distributions, side by side.
    let indoor_dist = label_distribution(&study.labels, study.config.k);
    let mut t = Table::new(vec!["cluster", "indoor", "outdoor"]);
    for c in 0..study.config.k {
        t.row(vec![
            c.to_string(),
            format!("{:.1}%", 100.0 * indoor_dist[c]),
            format!("{:.1}%", 100.0 * study.outdoor.distribution[c]),
        ]);
    }
    println!("indoor vs outdoor cluster distribution:\n{}", t.render());

    println!(
        "entropy: indoor {:.2} nats, outdoor {:.2} nats",
        distribution_entropy(&indoor_dist),
        distribution_entropy(&study.outdoor.distribution)
    );

    // Zoom: outdoor antennas adjacent to *stadium* and *workspace* sites —
    // their neighbours' indoor clusters are distinctive, yet the outdoor
    // cells still read as general use.
    let mut near = Table::new(vec![
        "neighbour env",
        "n outdoor",
        "% classified general-use",
    ]);
    for env in [
        Environment::Stadium,
        Environment::Workspace,
        Environment::Metro,
    ] {
        let mut n = 0usize;
        let mut general = 0usize;
        for (o, &pred) in dataset.outdoor.iter().zip(&study.outdoor.predicted) {
            let neighbor = &dataset.antennas[o.neighbor_indoor_id];
            if neighbor.environment == env {
                n += 1;
                if pred == Archetype::GeneralUse.id() {
                    general += 1;
                }
            }
        }
        near.row(vec![
            env.label().to_string(),
            n.to_string(),
            format!("{:.0}%", 100.0 * general as f64 / n.max(1) as f64),
        ]);
    }
    println!(
        "outdoor cells by neighbouring indoor environment:\n{}",
        near.render()
    );

    let (c, share) = study.outdoor.dominant;
    println!(
        "=> {:.0}% of outdoor antennas fall into cluster {c} — the paper reports ~70% in its \
         general-use cluster 1, with transit/stadium/workspace clusters nearly absent.",
        100.0 * share
    );
}
