//! The full collection path: probe → DPI → aggregation → analysis.
//!
//! Regenerates the totals matrix the way the operator of the paper's
//! Section 3 produced theirs — individual TCP/UDP sessions, ULI
//! geo-referencing, DPI classification with realistic confusion, hourly
//! aggregation with privacy suppression — then runs the clustering on the
//! probe-produced matrix and compares against the direct generator.
//!
//! ```sh
//! cargo run --release --example probe_pipeline
//! ```

use icn_report::Table;
use icn_repro::prelude::*;
use icn_synth::Date;

fn main() {
    let ds = Dataset::generate(SynthConfig::small().with_scale(0.05));
    let window = StudyCalendar::custom(Date::new(2023, 1, 9), 5);
    println!(
        "population: {} antennas, {} services; probing a {}-day window\n",
        ds.num_antennas(),
        ds.num_services(),
        window.num_days()
    );

    let mut comparison = Table::new(vec![
        "DPI model",
        "sessions",
        "unclassified",
        "suppressed cells",
        "ARI vs planted",
    ]);

    let configs: Vec<(&str, CampaignConfig)> = vec![
        (
            "perfect",
            CampaignConfig {
                dpi: DpiConfig::perfect(),
                ..CampaignConfig::default()
            },
        ),
        ("default (3% confusion)", CampaignConfig::default()),
        (
            "noisy (15% confusion)",
            CampaignConfig {
                dpi: DpiConfig {
                    confusion_rate: 0.15,
                    within_category: 0.8,
                    unclassified_rate: 0.05,
                },
                ..CampaignConfig::default()
            },
        ),
        (
            "k=2 privacy suppression",
            CampaignConfig {
                min_sessions_per_cell: 2,
                ..CampaignConfig::default()
            },
        ),
        (
            "k=5 privacy suppression (harsh)",
            CampaignConfig {
                min_sessions_per_cell: 5,
                ..CampaignConfig::default()
            },
        ),
    ];

    let planted_all = ds.planted_labels();
    for (name, cfg) in configs {
        let result = run_campaign(&ds, &window, &cfg);
        let (live, live_rows) = filter_dead_rows(&result.totals);
        let features = rsca(&live);
        let labels = agglomerate(&features, Linkage::Ward).cut(9);
        let planted: Vec<usize> = live_rows.iter().map(|&i| planted_all[i]).collect();
        let ari = adjusted_rand_index(&labels, &planted);
        comparison.row(vec![
            name.to_string(),
            result.sessions.to_string(),
            result.dropped_unclassified.to_string(),
            result.suppressed_cells.to_string(),
            format!("{ari:.3}"),
        ]);
    }
    println!("{}", comparison.render());
    println!(
        "the structure survives the realistic collection path (session sampling, DPI \
         confusion, light suppression); harsh per-hour suppression (k=5) erases the \
         low-volume services RSCA depends on — exactly why the paper aggregates to \
         two-month totals before analysis."
    );
}
