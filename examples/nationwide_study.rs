//! The full nationwide study at paper scale: 4,762 indoor antennas with the
//! exact Table 1 environment mix, ~19k outdoor antennas, Figure 2 k-sweep,
//! k = 9 clustering, SHAP interpretation and all headline statistics.
//!
//! This is the heavyweight example (minutes in release mode):
//!
//! ```sh
//! cargo run --release --example nationwide_study
//! ```
//!
//! Pass `--scale 0.25` (any positive float) to run a reduced population.

use icn_report::Table;
use icn_repro::prelude::*;

fn main() {
    let scale = parse_scale().unwrap_or(1.0);
    eprintln!("generating dataset at scale {scale} ...");
    let dataset = Dataset::generate(SynthConfig::paper().with_scale(scale));
    eprintln!(
        "dataset ready: {} indoor / {} outdoor antennas",
        dataset.num_antennas(),
        dataset.outdoor.len()
    );

    let config = StudyConfig {
        // The sweep is the slow part; keep it on to reproduce Figure 2.
        run_k_sweep: true,
        ..StudyConfig::paper()
    };
    eprintln!("running study (transform, cluster, sweep, surrogate, SHAP) ...");
    let study = IcnStudy::run(&dataset, config);

    // --- Figure 2: quality indices per k ---
    let mut sweep = Table::new(vec!["k", "silhouette", "dunn"]);
    for q in &study.k_sweep {
        sweep.row(vec![
            q.k.to_string(),
            format!("{:.4}", q.silhouette),
            format!("{:.5}", q.dunn),
        ]);
    }
    println!("Figure 2 — quality indices vs k:\n{}", sweep.render());

    // --- Cluster census with dominant environments ---
    let mut census = Table::new(vec![
        "cluster",
        "antennas",
        "paris%",
        "dominant env",
        "env share",
    ]);
    let sizes = study.cluster_sizes();
    for c in 0..study.config.k {
        let (env, share) = study.crosstab.dominant_environment(c);
        census.row(vec![
            c.to_string(),
            sizes[c].to_string(),
            format!("{:.0}%", 100.0 * study.crosstab.paris_share[c]),
            env.label().to_string(),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    println!("cluster census:\n{}", census.render());

    // --- Surrogate fidelity ---
    println!(
        "surrogate: train accuracy {:.4}, OOB {:?}",
        study.surrogate_accuracy, study.surrogate_oob
    );

    // --- SHAP: the defining services per cluster ---
    let names: Vec<&str> = dataset.services.iter().map(|s| s.name).collect();
    for ex in &study.explanations {
        println!("{}", icn_report::beeswarm::render(ex, &names, 10, 24));
    }

    // --- Outdoor comparison (Figure 9) ---
    let mut outdoor = Table::new(vec!["cluster", "outdoor share"]);
    for (c, share) in study.outdoor.distribution.iter().enumerate() {
        outdoor.row(vec![c.to_string(), format!("{:.1}%", 100.0 * share)]);
    }
    println!(
        "Figure 9 — outdoor cluster distribution:\n{}",
        outdoor.render()
    );

    // --- Recovery vs planted archetypes ---
    let planted: Vec<usize> = study
        .live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    println!(
        "validation: ARI {:.3}, NMI {:.3}, purity {:.3}",
        adjusted_rand_index(&study.labels, &planted),
        normalized_mutual_info(&study.labels, &planted),
        purity(&study.labels, &planted),
    );
}

fn parse_scale() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--scale")?;
    args.get(pos + 1)?.parse().ok().filter(|s: &f64| *s > 0.0)
}
