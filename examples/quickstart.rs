//! Quickstart: generate a small synthetic campaign, run the full study,
//! and print the headline findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icn_repro::prelude::*;

fn main() {
    // 1. A scaled-down nationwide measurement campaign (~380 indoor
    //    antennas, 73 services, plus outdoor neighbours). Fully
    //    deterministic in the seed.
    let dataset = Dataset::generate(SynthConfig::small());
    println!(
        "dataset: {} indoor antennas, {} services, {} outdoor antennas",
        dataset.num_antennas(),
        dataset.num_services(),
        dataset.outdoor.len()
    );

    // 2. The paper's pipeline: RSCA -> Ward clustering (k = 9) ->
    //    random-forest surrogate -> SHAP -> environment crosstabs ->
    //    outdoor comparison.
    let study = IcnStudy::run(&dataset, StudyConfig::fast());

    println!("\ncluster sizes: {:?}", study.cluster_sizes());
    println!(
        "surrogate accuracy {:.3} (OOB {:?})",
        study.surrogate_accuracy, study.surrogate_oob
    );

    // 3. What characterises each cluster? Top-3 services by SHAP.
    let names: Vec<&str> = dataset.services.iter().map(|s| s.name).collect();
    for ex in &study.explanations {
        let top: Vec<String> = ex
            .top(3)
            .iter()
            .map(|i| {
                let dir = match i.direction {
                    Direction::OverUtilized => "+",
                    Direction::UnderUtilized => "-",
                    Direction::Neutral => "·",
                };
                format!("{}{}", dir, names[i.feature])
            })
            .collect();
        let (env, share) = study.crosstab.dominant_environment(ex.class);
        println!(
            "cluster {}: {:<55} dominant env: {} ({:.0}%)",
            ex.class,
            top.join(", "),
            env.label(),
            100.0 * share
        );
    }

    // 4. Outdoor antennas collapse into one general-use cluster.
    let (dom_cluster, share) = study.outdoor.dominant;
    println!(
        "\noutdoor: {:.0}% of {} antennas land in cluster {} \
         (indoor diversity entropy {:.2}, outdoor {:.2})",
        100.0 * share,
        study.outdoor.predicted.len(),
        dom_cluster,
        distribution_entropy(&label_distribution(&study.labels, 9)),
        distribution_entropy(&study.outdoor.distribution),
    );

    // 5. Validation against the planted ground truth (possible only on
    //    synthetic data): adjusted Rand index of the recovered clusters.
    let planted: Vec<usize> = study
        .live_rows
        .iter()
        .map(|&i| dataset.planted_labels()[i])
        .collect();
    println!(
        "adjusted Rand index vs planted archetypes: {:.3}",
        adjusted_rand_index(&study.labels, &planted)
    );
}
