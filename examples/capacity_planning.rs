//! Capacity planning with environment-aware slices — the Section 7 roadmap.
//!
//! The paper argues that ICN resource orchestration "should not target
//! overall capacity, as in outdoor environments, but must take into account
//! the most important application usage per indoor environment", proposing
//! an indoor network-slicing dimension with per-environment tuning (e.g.
//! content caching). This example builds that planner on top of the study:
//! for each cluster it derives a slice template (dominant service
//! categories, peak hours, a caching recommendation) and quantifies the
//! win over a one-size-fits-all allocation.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use icn_report::Table;
use icn_repro::prelude::*;
use std::collections::HashMap;

fn main() {
    let dataset = Dataset::generate(SynthConfig::small().with_scale(0.2));
    let study = IcnStudy::run(&dataset, StudyConfig::fast());
    let window = StudyCalendar::temporal_window();

    let mut slices = Table::new(vec![
        "cluster",
        "dominant env",
        "top categories (by mean RSCA)",
        "peak hours",
        "cache candidate",
    ]);

    let mut per_cluster_peak: Vec<usize> = Vec::new();
    for profile in &study.profiles {
        let c = profile.cluster;
        // Aggregate mean RSCA by service category.
        let mut by_cat: HashMap<&str, (f64, usize)> = HashMap::new();
        for (j, svc) in dataset.services.iter().enumerate() {
            let e = by_cat.entry(svc.category.label()).or_insert((0.0, 0));
            e.0 += profile.mean_rsca[j];
            e.1 += 1;
        }
        let mut cats: Vec<(&str, f64)> = by_cat
            .into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect();
        cats.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top_cats: Vec<&str> = cats.iter().take(3).map(|(k, _)| *k).collect();

        // Temporal peak hours from the cluster heatmap.
        let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| study.labels[*pos] == c)
            .map(|(_, &row)| (&dataset.antennas[row], dataset.indoor_totals.row(row)))
            .unzip();
        let hm = cluster_heatmap(
            &members,
            &rows,
            &dataset.services,
            65,
            &window,
            dataset.root_rng(),
        );
        let mut hour_means = [0.0f64; 24];
        for day in &hm.values {
            for (h, v) in day.iter().enumerate() {
                hour_means[h] += v;
            }
        }
        let peak_hour = icn_stats::rank::argmax(&hour_means);
        per_cluster_peak.push(peak_hour);

        // Caching: the most over-utilised *streaming-heavy* service.
        let cache = profile
            .top_over(10)
            .into_iter()
            .find(|&j| dataset.services[j].volume_scale >= 10.0)
            .map(|j| dataset.services[j].name)
            .unwrap_or("(none)");

        let (env, _) = study.crosstab.dominant_environment(c);
        slices.row(vec![
            c.to_string(),
            env.label().to_string(),
            top_cats.join(", "),
            format!("{:02}:00±2h", peak_hour),
            cache.to_string(),
        ]);
    }
    println!("per-cluster slice templates:\n{}", slices.render());

    // Quantify the win: peak-hour staggering across clusters means
    // environment-aware scheduling can reuse capacity that a uniform plan
    // must provision for everyone simultaneously.
    let distinct_peaks: std::collections::HashSet<usize> =
        per_cluster_peak.iter().copied().collect();
    println!(
        "peak hours span {} distinct slots across 9 clusters — a uniform plan provisions all \
         clusters for the same busy hour; environment-aware slices stagger them.",
        distinct_peaks.len()
    );

    // Cache effectiveness: fraction of a cluster's traffic covered by its
    // top-5 over-utilised services vs the global top-5.
    let global_top: Vec<usize> = {
        let col_sums = dataset.indoor_totals.col_sums();
        icn_stats::rank::top_k(&col_sums, 5)
    };
    let mut cover = Table::new(vec!["cluster", "cluster-aware top-5", "global top-5"]);
    for profile in &study.profiles {
        let c = profile.cluster;
        let members: Vec<usize> = study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| study.labels[*pos] == c)
            .map(|(_, &row)| row)
            .collect();
        let mut totals = vec![0.0f64; dataset.num_services()];
        let mut all = 0.0f64;
        for &r in &members {
            for (j, t) in totals.iter_mut().enumerate() {
                *t += dataset.indoor_totals.get(r, j);
            }
            all += dataset.indoor_totals.row_sums()[r];
        }
        let aware: Vec<usize> = icn_stats::rank::top_k(&totals, 5);
        let frac =
            |set: &[usize]| -> f64 { set.iter().map(|&j| totals[j]).sum::<f64>() / all.max(1e-12) };
        cover.row(vec![
            c.to_string(),
            format!("{:.0}%", 100.0 * frac(&aware)),
            format!("{:.0}%", 100.0 * frac(&global_top)),
        ]);
    }
    println!(
        "cache coverage (share of cluster traffic in its cached top-5):\n{}",
        cover.render()
    );

    // Energy adaptation (§7: "adaptive power transmission control"):
    // hours where a cluster's median traffic falls below 10% of its peak
    // are sleep-mode candidates. Environment-aware scheduling finds far
    // more such hours for offices/transit than a uniform policy could.
    let mut energy = Table::new(vec![
        "cluster",
        "dominant env",
        "sleep-candidate hours/week",
    ]);
    for c in 0..study.config.k {
        let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| study.labels[*pos] == c)
            .map(|(_, &row)| (&dataset.antennas[row], dataset.indoor_totals.row(row)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = cluster_heatmap(
            &members,
            &rows,
            &dataset.services,
            65,
            &window,
            dataset.root_rng(),
        );
        // Count quiet cells over one representative full week (days 5..12
        // of the window avoid the strike day).
        let quiet: usize = (5..12)
            .flat_map(|d| hm.values[d].iter())
            .filter(|&&v| v < 0.1)
            .count();
        let (env, _) = study.crosstab.dominant_environment(c);
        energy.row(vec![
            c.to_string(),
            env.label().to_string(),
            quiet.to_string(),
        ]);
    }
    println!(
        "energy adaptation — hours/week below 10% of cluster peak (sleep candidates):\n{}",
        energy.render()
    );
}
