//! Temporal explorer: renders the Figure 10-style heatmaps for every
//! cluster plus selected Figure 11 service heatmaps, in the terminal.
//!
//! ```sh
//! cargo run --release --example temporal_explorer
//! ```

use icn_repro::prelude::*;
use icn_synth::services::index_of;

fn main() {
    let dataset = Dataset::generate(SynthConfig::small().with_scale(0.15));
    let study = IcnStudy::run(&dataset, StudyConfig::fast());
    let window = StudyCalendar::temporal_window();

    // Per-cluster aggregate heatmaps (Figure 10).
    for c in 0..study.config.k {
        let (members, rows): (Vec<&icn_synth::Antenna>, Vec<&[f64]>) = study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| study.labels[*pos] == c)
            .map(|(_, &row)| (&dataset.antennas[row], dataset.indoor_totals.row(row)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = cluster_heatmap(
            &members,
            &rows,
            &dataset.services,
            65,
            &window,
            dataset.root_rng(),
        );
        let (env, _) = study.crosstab.dominant_environment(c);
        println!(
            "cluster {c} ({}; {} antennas) — commute ratio {:.2}, weekend ratio {:.2}, \
             strike dip {:.2}, burstiness {:.1}",
            env.label(),
            members.len(),
            hm.commute_ratio(),
            hm.weekend_ratio(),
            hm.strike_dip(),
            hm.burstiness()
        );
        let labels: Vec<String> = (0..hm.values.len())
            .map(|d| window.date(d).iso().to_string())
            .collect();
        print!(
            "{}",
            icn_report::heatmap::render_sequential(&hm.values, Some(&labels))
        );
        println!();
    }

    // Figure 11 exemplars: Spotify at a commuter cluster, Teams at the
    // workspace cluster, Netflix at retail/hospitality.
    let map = study.cluster_to_archetype(&dataset);
    let find_cluster = |arch: Archetype| map.iter().position(|&a| a == arch.id());
    let picks = [
        ("Spotify", Archetype::ParisMetro),
        ("Microsoft Teams", Archetype::Workspace),
        ("Netflix", Archetype::RetailHospitality),
    ];
    for (svc_name, arch) in picks {
        let Some(cluster) = find_cluster(arch) else {
            continue;
        };
        let j = index_of(&dataset.services, svc_name).expect("service in catalog");
        let (members, totals): (Vec<&icn_synth::Antenna>, Vec<f64>) = study
            .live_rows
            .iter()
            .enumerate()
            .filter(|(pos, _)| study.labels[*pos] == cluster)
            .map(|(_, &row)| (&dataset.antennas[row], dataset.indoor_totals.get(row, j)))
            .unzip();
        if members.is_empty() {
            continue;
        }
        let hm = service_heatmap(
            &members,
            &totals,
            &dataset.services[j],
            65,
            &window,
            dataset.root_rng(),
        );
        println!(
            "{} at cluster {} ({:?}): commute ratio {:.2}, weekend ratio {:.2}",
            svc_name,
            cluster,
            arch,
            hm.commute_ratio(),
            hm.weekend_ratio()
        );
        let labels: Vec<String> = (0..hm.values.len()).map(|d| window.date(d).iso()).collect();
        print!(
            "{}",
            icn_report::heatmap::render_sequential(&hm.values, Some(&labels))
        );
        println!();
    }
}
